#include "ccap/info/dmc.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "ccap/info/entropy.hpp"

namespace ccap::info {

Dmc::Dmc(util::Matrix transition, std::string name)
    : w_(std::move(transition)), name_(std::move(name)) {
    if (w_.rows() == 0 || w_.cols() == 0) throw std::invalid_argument("Dmc: empty matrix");
    if (!w_.is_row_stochastic(1e-9)) throw std::invalid_argument("Dmc: matrix not row-stochastic");
    w_.normalize_rows();  // remove the 1e-9 slack exactly
}

std::vector<double> Dmc::output_distribution(std::span<const double> input) const {
    if (input.size() != w_.rows())
        throw std::invalid_argument("Dmc::output_distribution: input size mismatch");
    return w_.transpose_vec(input);
}

std::size_t Dmc::sample(std::size_t x, util::Rng& rng) const {
    if (x >= w_.rows()) throw std::out_of_range("Dmc::sample: input symbol out of range");
    return rng.categorical(w_.row(x));  // in-range for the stochastic row
}

std::vector<std::size_t> Dmc::transduce(std::span<const std::size_t> inputs,
                                        util::Rng& rng) const {
    std::vector<std::size_t> out;
    out.reserve(inputs.size());
    for (std::size_t x : inputs) out.push_back(sample(x, rng));
    return out;
}

namespace {
void check_prob(double p, const char* who) {
    if (p < 0.0 || p > 1.0) throw std::domain_error(std::string(who) + ": probability outside [0,1]");
}
}  // namespace

Dmc make_bsc(double p) {
    check_prob(p, "make_bsc");
    return Dmc(util::Matrix{{1.0 - p, p}, {p, 1.0 - p}}, "bsc");
}

Dmc make_bec(double e) {
    check_prob(e, "make_bec");
    return Dmc(util::Matrix{{1.0 - e, 0.0, e}, {0.0, 1.0 - e, e}}, "bec");
}

Dmc make_mary_symmetric(unsigned m, double p) {
    if (m < 2) throw std::invalid_argument("make_mary_symmetric: m < 2");
    check_prob(p, "make_mary_symmetric");
    util::Matrix w(m, m, p / (static_cast<double>(m) - 1.0));
    for (unsigned i = 0; i < m; ++i) w(i, i) = 1.0 - p;
    return Dmc(std::move(w), "mary_symmetric");
}

Dmc make_z_channel(double p) {
    check_prob(p, "make_z_channel");
    return Dmc(util::Matrix{{1.0, 0.0}, {p, 1.0 - p}}, "z_channel");
}

Dmc make_mary_erasure(unsigned m, double e) {
    if (m < 2) throw std::invalid_argument("make_mary_erasure: m < 2");
    check_prob(e, "make_mary_erasure");
    util::Matrix w(m, m + 1);
    for (unsigned i = 0; i < m; ++i) {
        w(i, i) = 1.0 - e;
        w(i, m) = e;
    }
    return Dmc(std::move(w), "mary_erasure");
}

Dmc make_noiseless(unsigned m) {
    if (m < 1) throw std::invalid_argument("make_noiseless: m < 1");
    util::Matrix w(m, m);
    for (unsigned i = 0; i < m; ++i) w(i, i) = 1.0;
    return Dmc(std::move(w), "noiseless");
}

double bsc_capacity(double p) {
    check_prob(p, "bsc_capacity");
    return 1.0 - binary_entropy(p);
}

double bec_capacity(double e) {
    check_prob(e, "bec_capacity");
    return 1.0 - e;
}

double z_channel_capacity(double p) {
    check_prob(p, "z_channel_capacity");
    if (p >= 1.0) return 0.0;
    // C = log2(1 + (1-p) * p^{p/(1-p)})
    const double q = 1.0 - p;
    return std::log2(1.0 + q * std::pow(p, p / q));
}

double mary_erasure_capacity(unsigned m, double e) {
    if (m < 2) throw std::invalid_argument("mary_erasure_capacity: m < 2");
    check_prob(e, "mary_erasure_capacity");
    return std::log2(static_cast<double>(m)) * (1.0 - e);
}

}  // namespace ccap::info
