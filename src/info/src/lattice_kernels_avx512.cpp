// AVX-512 lane kernels (8 doubles per op).
//
// Compiled with exactly `-march=x86-64 -mtune=generic -mavx512f
// -ffp-contract=off` (src/info/CMakeLists.txt). Same bit-identity
// discipline as the AVX2 TU: separate multiply/add intrinsics (no FMA),
// elementwise ops only, selects realised as mask blends over exact table
// entries keyed on selector bytes in {0, 1}.
//
// Ragged tails (L not a multiple of 8) run one masked vector iteration via
// the native AVX-512F lane masks: `_mm512_maskz_loadu_pd` reads only the
// first `rem` doubles (zeros above, no fault on masked-out addresses) and
// `_mm512_mask_storeu_pd` writes only those lanes. Live lanes execute the
// identical elementwise ops, so tails stay bit-identical to the scalar
// reference.
#include "ccap/info/lattice_simd.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstring>

namespace ccap::info {

namespace {

constexpr std::size_t kW = 8;

/// Mask of lanes whose selector byte is non-zero.
inline __mmask8 load_sel8(const std::uint8_t* sel) {
    std::uint64_t packed;
    std::memcpy(&packed, sel, sizeof packed);
    const __m512i v = _mm512_cvtepu8_epi64(
        _mm_cvtsi64_si128(static_cast<long long>(packed)));
    return _mm512_cmpneq_epi64_mask(v, _mm512_setzero_si512());
}

/// load_sel8 over only `rem` < 8 bytes; bytes past the tail decode as
/// symbol 0 (their lanes are masked out of every store anyway). The
/// partial memcpy never reads past sel[rem-1].
inline __mmask8 load_sel_tail(const std::uint8_t* sel, std::size_t rem) {
    std::uint64_t packed = 0;
    std::memcpy(&packed, sel, rem);
    const __m512i v = _mm512_cvtepu8_epi64(
        _mm_cvtsi64_si128(static_cast<long long>(packed)));
    return _mm512_cmpneq_epi64_mask(v, _mm512_setzero_si512());
}

/// Set bits for lanes [0, rem).
inline __mmask8 tail_mask(std::size_t rem) {
    return static_cast<__mmask8>((1u << rem) - 1u);
}

void k_axpy(double* dst, const double* src, double w, std::size_t L) {
    const __m512d wv = _mm512_set1_pd(w);
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m512d d = _mm512_loadu_pd(dst + l);
        const __m512d s = _mm512_loadu_pd(src + l);
        _mm512_storeu_pd(dst + l, _mm512_add_pd(d, _mm512_mul_pd(s, wv)));
    }
    if (l < L) {
        const __mmask8 m = tail_mask(L - l);
        const __m512d d = _mm512_maskz_loadu_pd(m, dst + l);
        const __m512d s = _mm512_maskz_loadu_pd(m, src + l);
        _mm512_mask_storeu_pd(dst + l, m, _mm512_add_pd(d, _mm512_mul_pd(s, wv)));
    }
}

void k_fma_weighted(double* dst, const double* src, double dw, double tw, const double* e,
                    std::size_t L) {
    const __m512d dwv = _mm512_set1_pd(dw);
    const __m512d twv = _mm512_set1_pd(tw);
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m512d ev = _mm512_loadu_pd(e + l);
        const __m512d wv = _mm512_add_pd(dwv, _mm512_mul_pd(twv, ev));
        const __m512d d = _mm512_loadu_pd(dst + l);
        const __m512d s = _mm512_loadu_pd(src + l);
        _mm512_storeu_pd(dst + l, _mm512_add_pd(d, _mm512_mul_pd(s, wv)));
    }
    if (l < L) {
        const __mmask8 m = tail_mask(L - l);
        const __m512d ev = _mm512_maskz_loadu_pd(m, e + l);
        const __m512d wv = _mm512_add_pd(dwv, _mm512_mul_pd(twv, ev));
        const __m512d d = _mm512_maskz_loadu_pd(m, dst + l);
        const __m512d s = _mm512_maskz_loadu_pd(m, src + l);
        _mm512_mask_storeu_pd(dst + l, m, _mm512_add_pd(d, _mm512_mul_pd(s, wv)));
    }
}

void k_accumulate(double* acc, const double* src, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m512d a = _mm512_loadu_pd(acc + l);
        const __m512d s = _mm512_loadu_pd(src + l);
        _mm512_storeu_pd(acc + l, _mm512_add_pd(a, s));
    }
    if (l < L) {
        const __mmask8 m = tail_mask(L - l);
        const __m512d a = _mm512_maskz_loadu_pd(m, acc + l);
        const __m512d s = _mm512_maskz_loadu_pd(m, src + l);
        _mm512_mask_storeu_pd(acc + l, m, _mm512_add_pd(a, s));
    }
}

void k_maximum(double* acc, const double* src, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m512d a = _mm512_loadu_pd(acc + l);
        const __m512d s = _mm512_loadu_pd(src + l);
        _mm512_storeu_pd(acc + l, _mm512_max_pd(a, s));
    }
    if (l < L) {
        const __mmask8 m = tail_mask(L - l);
        const __m512d a = _mm512_maskz_loadu_pd(m, acc + l);
        const __m512d s = _mm512_maskz_loadu_pd(m, src + l);
        _mm512_mask_storeu_pd(acc + l, m, _mm512_max_pd(a, s));
    }
}

void k_divide(double* dst, const double* norm, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m512d d = _mm512_loadu_pd(dst + l);
        const __m512d n = _mm512_loadu_pd(norm + l);
        _mm512_storeu_pd(dst + l, _mm512_div_pd(d, n));
    }
    if (l < L) {
        // Dead lanes divide 0/0 -> NaN; the masked store discards them and
        // nothing in the library inspects the FP status flags.
        const __mmask8 m = tail_mask(L - l);
        const __m512d d = _mm512_maskz_loadu_pd(m, dst + l);
        const __m512d n = _mm512_maskz_loadu_pd(m, norm + l);
        _mm512_mask_storeu_pd(dst + l, m, _mm512_div_pd(d, n));
    }
}

void k_select_const(double* ed, const std::uint8_t* sel, double v0, double v1,
                    std::size_t L) {
    const __m512d v0v = _mm512_set1_pd(v0);
    const __m512d v1v = _mm512_set1_pd(v1);
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        // mask_blend picks its third operand where the mask bit is set.
        _mm512_storeu_pd(ed + l, _mm512_mask_blend_pd(load_sel8(sel + l), v0v, v1v));
    }
    if (l < L) {
        const std::size_t rem = L - l;
        _mm512_mask_storeu_pd(ed + l, tail_mask(rem),
                              _mm512_mask_blend_pd(load_sel_tail(sel + l, rem), v0v, v1v));
    }
}

void k_select_lanes(double* ed, const std::uint8_t* sel, const double* e0, const double* e1,
                    std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m512d a = _mm512_loadu_pd(e0 + l);
        const __m512d b = _mm512_loadu_pd(e1 + l);
        _mm512_storeu_pd(ed + l, _mm512_mask_blend_pd(load_sel8(sel + l), a, b));
    }
    if (l < L) {
        const std::size_t rem = L - l;
        const __mmask8 m = tail_mask(rem);
        const __m512d a = _mm512_maskz_loadu_pd(m, e0 + l);
        const __m512d b = _mm512_maskz_loadu_pd(m, e1 + l);
        _mm512_mask_storeu_pd(ed + l, m,
                              _mm512_mask_blend_pd(load_sel_tail(sel + l, rem), a, b));
    }
}

void k_fma_run(double* dst, const double* src, const double* dw, const double* tw,
               const double* e, std::size_t runs, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m512d s = _mm512_loadu_pd(src + l);  // reused across the run
        for (std::size_t g = 0; g < runs; ++g) {
            double* d = dst + g * L + l;
            const __m512d ev = _mm512_loadu_pd(e + g * L + l);
            const __m512d wv =
                _mm512_add_pd(_mm512_set1_pd(dw[g]), _mm512_mul_pd(_mm512_set1_pd(tw[g]), ev));
            _mm512_storeu_pd(d, _mm512_add_pd(_mm512_loadu_pd(d), _mm512_mul_pd(s, wv)));
        }
    }
    if (l < L) {
        const __mmask8 m = tail_mask(L - l);
        const __m512d s = _mm512_maskz_loadu_pd(m, src + l);
        for (std::size_t g = 0; g < runs; ++g) {
            double* d = dst + g * L + l;
            const __m512d ev = _mm512_maskz_loadu_pd(m, e + g * L + l);
            const __m512d wv =
                _mm512_add_pd(_mm512_set1_pd(dw[g]), _mm512_mul_pd(_mm512_set1_pd(tw[g]), ev));
            _mm512_mask_storeu_pd(
                d, m, _mm512_add_pd(_mm512_maskz_loadu_pd(m, d), _mm512_mul_pd(s, wv)));
        }
    }
}

void k_fma_acc_run(double* acc, const double* src, const double* dw, const double* tw,
                   const double* e, std::size_t runs, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        __m512d a = _mm512_loadu_pd(acc + l);
        for (std::size_t g = 0; g < runs; ++g) {  // g-ascending: unfused add order
            const __m512d sv = _mm512_loadu_pd(src + g * L + l);
            const __m512d ev = _mm512_loadu_pd(e + g * L + l);
            const __m512d wv =
                _mm512_add_pd(_mm512_set1_pd(dw[g]), _mm512_mul_pd(_mm512_set1_pd(tw[g]), ev));
            a = _mm512_add_pd(a, _mm512_mul_pd(sv, wv));
        }
        _mm512_storeu_pd(acc + l, a);
    }
    if (l < L) {
        const __mmask8 m = tail_mask(L - l);
        __m512d a = _mm512_maskz_loadu_pd(m, acc + l);
        for (std::size_t g = 0; g < runs; ++g) {
            const __m512d sv = _mm512_maskz_loadu_pd(m, src + g * L + l);
            const __m512d ev = _mm512_maskz_loadu_pd(m, e + g * L + l);
            const __m512d wv =
                _mm512_add_pd(_mm512_set1_pd(dw[g]), _mm512_mul_pd(_mm512_set1_pd(tw[g]), ev));
            a = _mm512_add_pd(a, _mm512_mul_pd(sv, wv));
        }
        _mm512_mask_storeu_pd(acc + l, m, a);
    }
}

void k_fma_dest_run(double* dst, const double* src, const double* dw, const double* tw,
                    const double* e, const double* src_del, double w_del,
                    std::size_t cnt, std::size_t L) {
    const __m512d wdel = _mm512_set1_pd(w_del);
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m512d ev = _mm512_loadu_pd(e + l);  // unused garbage when cnt == 0
        __m512d a = _mm512_setzero_pd();
        for (std::size_t i = 0; i < cnt; ++i) {
            const std::ptrdiff_t gi = -static_cast<std::ptrdiff_t>(i);
            const __m512d sv = _mm512_loadu_pd(src + i * L + l);
            const __m512d wv =
                _mm512_add_pd(_mm512_set1_pd(dw[gi]), _mm512_mul_pd(_mm512_set1_pd(tw[gi]), ev));
            a = _mm512_add_pd(a, _mm512_mul_pd(sv, wv));
        }
        if (src_del) a = _mm512_add_pd(a, _mm512_mul_pd(_mm512_loadu_pd(src_del + l), wdel));
        _mm512_storeu_pd(dst + l, a);
    }
    if (l < L) {
        const __mmask8 m = tail_mask(L - l);
        const __m512d ev = _mm512_maskz_loadu_pd(m, e + l);
        __m512d a = _mm512_setzero_pd();
        for (std::size_t i = 0; i < cnt; ++i) {
            const std::ptrdiff_t gi = -static_cast<std::ptrdiff_t>(i);
            const __m512d sv = _mm512_maskz_loadu_pd(m, src + i * L + l);
            const __m512d wv =
                _mm512_add_pd(_mm512_set1_pd(dw[gi]), _mm512_mul_pd(_mm512_set1_pd(tw[gi]), ev));
            a = _mm512_add_pd(a, _mm512_mul_pd(sv, wv));
        }
        if (src_del)
            a = _mm512_add_pd(a, _mm512_mul_pd(_mm512_maskz_loadu_pd(m, src_del + l), wdel));
        _mm512_mask_storeu_pd(dst + l, m, a);
    }
}

void k_axpy_lanes(double* dst, const double* src, const double* w, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m512d d = _mm512_loadu_pd(dst + l);
        const __m512d s = _mm512_loadu_pd(src + l);
        _mm512_storeu_pd(dst + l,
                         _mm512_add_pd(d, _mm512_mul_pd(s, _mm512_loadu_pd(w + l))));
    }
    if (l < L) {
        const __mmask8 m = tail_mask(L - l);
        const __m512d d = _mm512_maskz_loadu_pd(m, dst + l);
        const __m512d s = _mm512_maskz_loadu_pd(m, src + l);
        _mm512_mask_storeu_pd(
            dst + l, m,
            _mm512_add_pd(d, _mm512_mul_pd(s, _mm512_maskz_loadu_pd(m, w + l))));
    }
}

void k_fma_acc_run_pl(double* acc, const double* src, const double* dw, const double* tw,
                      const double* e, std::size_t runs, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        __m512d a = _mm512_loadu_pd(acc + l);
        for (std::size_t g = 0; g < runs; ++g) {  // g-ascending: unfused add order
            const __m512d sv = _mm512_loadu_pd(src + g * L + l);
            const __m512d ev = _mm512_loadu_pd(e + g * L + l);
            const __m512d wv = _mm512_add_pd(
                _mm512_loadu_pd(dw + g * L + l),
                _mm512_mul_pd(_mm512_loadu_pd(tw + g * L + l), ev));
            a = _mm512_add_pd(a, _mm512_mul_pd(sv, wv));
        }
        _mm512_storeu_pd(acc + l, a);
    }
    if (l < L) {
        const __mmask8 m = tail_mask(L - l);
        __m512d a = _mm512_maskz_loadu_pd(m, acc + l);
        for (std::size_t g = 0; g < runs; ++g) {
            const __m512d sv = _mm512_maskz_loadu_pd(m, src + g * L + l);
            const __m512d ev = _mm512_maskz_loadu_pd(m, e + g * L + l);
            const __m512d wv = _mm512_add_pd(
                _mm512_maskz_loadu_pd(m, dw + g * L + l),
                _mm512_mul_pd(_mm512_maskz_loadu_pd(m, tw + g * L + l), ev));
            a = _mm512_add_pd(a, _mm512_mul_pd(sv, wv));
        }
        _mm512_mask_storeu_pd(acc + l, m, a);
    }
}

void k_fma_dest_run_pl(double* dst, const double* src, const double* dw, const double* tw,
                       const double* e, const double* src_del, const double* w_del,
                       std::size_t cnt, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m512d ev = _mm512_loadu_pd(e + l);  // unused garbage when cnt == 0
        __m512d a = _mm512_setzero_pd();
        for (std::size_t i = 0; i < cnt; ++i) {
            const std::ptrdiff_t gi =
                -static_cast<std::ptrdiff_t>(i * L) + static_cast<std::ptrdiff_t>(l);
            const __m512d sv = _mm512_loadu_pd(src + i * L + l);
            const __m512d wv = _mm512_add_pd(
                _mm512_loadu_pd(dw + gi), _mm512_mul_pd(_mm512_loadu_pd(tw + gi), ev));
            a = _mm512_add_pd(a, _mm512_mul_pd(sv, wv));
        }
        if (src_del)
            a = _mm512_add_pd(a, _mm512_mul_pd(_mm512_loadu_pd(src_del + l),
                                               _mm512_loadu_pd(w_del + l)));
        _mm512_storeu_pd(dst + l, a);
    }
    if (l < L) {
        const __mmask8 m = tail_mask(L - l);
        const __m512d ev = _mm512_maskz_loadu_pd(m, e + l);
        __m512d a = _mm512_setzero_pd();
        for (std::size_t i = 0; i < cnt; ++i) {
            const std::ptrdiff_t gi =
                -static_cast<std::ptrdiff_t>(i * L) + static_cast<std::ptrdiff_t>(l);
            const __m512d sv = _mm512_maskz_loadu_pd(m, src + i * L + l);
            const __m512d wv = _mm512_add_pd(
                _mm512_maskz_loadu_pd(m, dw + gi),
                _mm512_mul_pd(_mm512_maskz_loadu_pd(m, tw + gi), ev));
            a = _mm512_add_pd(a, _mm512_mul_pd(sv, wv));
        }
        if (src_del)
            a = _mm512_add_pd(a, _mm512_mul_pd(_mm512_maskz_loadu_pd(m, src_del + l),
                                               _mm512_maskz_loadu_pd(m, w_del + l)));
        _mm512_mask_storeu_pd(dst + l, m, a);
    }
}

constexpr LaneKernels kAvx512Kernels = {
    k_axpy,         k_fma_weighted, k_accumulate,     k_maximum,     k_divide,
    k_select_const, k_select_lanes, k_fma_run,        k_fma_acc_run,
    k_fma_dest_run, k_axpy_lanes,   k_fma_acc_run_pl, k_fma_dest_run_pl,
    "avx512",       kW,             util::SimdPath::avx512,
};

}  // namespace

const LaneKernels* lane_kernels_avx512() noexcept { return &kAvx512Kernels; }

}  // namespace ccap::info

#endif  // x86
