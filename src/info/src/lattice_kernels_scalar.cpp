// Scalar lane kernels: the bit-identity reference every vector path is
// tested against. This TU is compiled with the baseline architecture and
// -ffp-contract=off even under CCAP_NATIVE_ARCH (src/info/CMakeLists.txt
// overrides the target-level -march), so the reference semantics cannot
// drift with the build flags: one IEEE multiply, one IEEE add per term,
// exactly as written.
#include "ccap/info/lattice_simd.hpp"

namespace ccap::info {

namespace {

void k_axpy(double* __restrict dst, const double* __restrict src, double w, std::size_t L) {
    for (std::size_t l = 0; l < L; ++l) dst[l] += src[l] * w;
}

void k_fma_weighted(double* __restrict dst, const double* __restrict src, double dw,
                    double tw, const double* __restrict e, std::size_t L) {
    for (std::size_t l = 0; l < L; ++l) dst[l] += src[l] * (dw + tw * e[l]);
}

void k_accumulate(double* __restrict acc, const double* __restrict src, std::size_t L) {
    for (std::size_t l = 0; l < L; ++l) acc[l] += src[l];
}

void k_maximum(double* __restrict acc, const double* __restrict src, std::size_t L) {
    for (std::size_t l = 0; l < L; ++l) acc[l] = acc[l] < src[l] ? src[l] : acc[l];
}

void k_divide(double* __restrict dst, const double* __restrict norm, std::size_t L) {
    for (std::size_t l = 0; l < L; ++l) dst[l] /= norm[l];
}

void k_select_const(double* __restrict ed, const std::uint8_t* __restrict sel, double v0,
                    double v1, std::size_t L) {
    for (std::size_t l = 0; l < L; ++l) ed[l] = sel[l] ? v1 : v0;
}

void k_select_lanes(double* __restrict ed, const std::uint8_t* __restrict sel,
                    const double* __restrict e0, const double* __restrict e1,
                    std::size_t L) {
    for (std::size_t l = 0; l < L; ++l) ed[l] = sel[l] ? e1[l] : e0[l];
}

void k_fma_run(double* __restrict dst, const double* __restrict src,
               const double* __restrict dw, const double* __restrict tw,
               const double* __restrict e, std::size_t runs, std::size_t L) {
    for (std::size_t g = 0; g < runs; ++g) {
        double* __restrict d = dst + g * L;
        const double* __restrict eg = e + g * L;
        const double dwg = dw[g], twg = tw[g];
        for (std::size_t l = 0; l < L; ++l) d[l] += src[l] * (dwg + twg * eg[l]);
    }
}

void k_fma_acc_run(double* __restrict acc, const double* __restrict src,
                   const double* __restrict dw, const double* __restrict tw,
                   const double* __restrict e, std::size_t runs, std::size_t L) {
    for (std::size_t g = 0; g < runs; ++g) {
        const double* __restrict sg = src + g * L;
        const double* __restrict eg = e + g * L;
        const double dwg = dw[g], twg = tw[g];
        for (std::size_t l = 0; l < L; ++l) acc[l] += sg[l] * (dwg + twg * eg[l]);
    }
}

void k_fma_dest_run(double* __restrict dst, const double* __restrict src,
                    const double* __restrict dw, const double* __restrict tw,
                    const double* __restrict e, const double* __restrict src_del,
                    double w_del, std::size_t cnt, std::size_t L) {
    for (std::size_t l = 0; l < L; ++l) {
        double a = 0.0;
        for (std::size_t i = 0; i < cnt; ++i) {
            const std::ptrdiff_t gi = -static_cast<std::ptrdiff_t>(i);
            a += src[i * L + l] * (dw[gi] + tw[gi] * e[l]);
        }
        if (src_del) a += src_del[l] * w_del;
        dst[l] = a;
    }
}

void k_axpy_lanes(double* __restrict dst, const double* __restrict src,
                  const double* __restrict w, std::size_t L) {
    for (std::size_t l = 0; l < L; ++l) dst[l] += src[l] * w[l];
}

void k_fma_acc_run_pl(double* __restrict acc, const double* __restrict src,
                      const double* __restrict dw, const double* __restrict tw,
                      const double* __restrict e, std::size_t runs, std::size_t L) {
    for (std::size_t g = 0; g < runs; ++g) {
        const double* __restrict sg = src + g * L;
        const double* __restrict eg = e + g * L;
        const double* __restrict dwg = dw + g * L;
        const double* __restrict twg = tw + g * L;
        for (std::size_t l = 0; l < L; ++l) acc[l] += sg[l] * (dwg[l] + twg[l] * eg[l]);
    }
}

void k_fma_dest_run_pl(double* __restrict dst, const double* __restrict src,
                       const double* __restrict dw, const double* __restrict tw,
                       const double* __restrict e, const double* __restrict src_del,
                       const double* __restrict w_del, std::size_t cnt, std::size_t L) {
    for (std::size_t l = 0; l < L; ++l) {
        double a = 0.0;
        for (std::size_t i = 0; i < cnt; ++i) {
            const std::ptrdiff_t gi = -static_cast<std::ptrdiff_t>(i * L);
            a += src[i * L + l] * (dw[gi + static_cast<std::ptrdiff_t>(l)] +
                                   tw[gi + static_cast<std::ptrdiff_t>(l)] * e[l]);
        }
        if (src_del) a += src_del[l] * w_del[l];
        dst[l] = a;
    }
}

constexpr LaneKernels kScalarKernels = {
    k_axpy,         k_fma_weighted, k_accumulate,        k_maximum, k_divide,
    k_select_const, k_select_lanes, k_fma_run,           k_fma_acc_run,
    k_fma_dest_run, k_axpy_lanes,   k_fma_acc_run_pl,    k_fma_dest_run_pl,
    "scalar",       1,              util::SimdPath::scalar,
};

}  // namespace

const LaneKernels* lane_kernels_scalar() noexcept { return &kScalarKernels; }

}  // namespace ccap::info
