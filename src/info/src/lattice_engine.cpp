#include "ccap/info/lattice_engine.hpp"

namespace ccap::info {

DriftTables::DriftTables(const DriftParams& p)
    : p_t(p.p_t()), inv_m(1.0 / static_cast<double>(p.alphabet)) {
    ins_pow.resize(static_cast<std::size_t>(p.max_insert_run) + 1);
    ins_pow[0] = 1.0;
    for (std::size_t g = 1; g < ins_pow.size(); ++g) ins_pow[g] = ins_pow[g - 1] * p.p_i * inv_m;
    // Hoist the per-cell emission branch into one M x M table; emit()
    // runs in the innermost (j, d, g) loops of every pass.
    const auto m_alpha = static_cast<std::size_t>(p.alphabet);
    const double p_sub = p.p_s / (static_cast<double>(p.alphabet) - 1.0);
    emit_tab.assign(m_alpha * m_alpha, p_sub);
    for (std::size_t s = 0; s < m_alpha; ++s) emit_tab[s * m_alpha + s] = 1.0 - p.p_s;
    // Pre-folded branch weights; the products carry the same value bit for
    // bit as the inline ins_pow[g] * p_d / ins_pow[g] * p_t() expressions.
    del_w.resize(ins_pow.size());
    tx_w.resize(ins_pow.size());
    for (std::size_t g = 0; g < ins_pow.size(); ++g) {
        del_w[g] = ins_pow[g] * p.p_d;
        tx_w[g] = ins_pow[g] * p.p_t();
    }
}

namespace {

// Per-thread free list of workspaces. A lease pops (so nested leases on the
// same thread get distinct arenas, e.g. a segment_likelihoods candidate
// callback that itself runs a DriftHmm query) and the destructor pushes
// back, so each pool worker converges on its own steady-state buffers.
thread_local std::vector<std::unique_ptr<LatticeWorkspace>> tls_free_list;

}  // namespace

ScopedWorkspace::ScopedWorkspace() {
    if (!tls_free_list.empty()) {
        ws_ = std::move(tls_free_list.back());
        tls_free_list.pop_back();
    } else {
        ws_ = std::make_unique<LatticeWorkspace>();
    }
}

ScopedWorkspace::~ScopedWorkspace() { tls_free_list.push_back(std::move(ws_)); }

}  // namespace ccap::info
