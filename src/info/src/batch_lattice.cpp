// DriftHmm batched entry points over BatchLatticeEngine (batch_lattice.hpp).
//
// Each operation packs its lanes into the workspace's SoA arenas, runs the
// lockstep passes, and unpacks per-lane results. The combine stages of
// posteriors/expected_events mirror the scalar loops with strided lane
// reads — same term sequence, so bit-identity at band_eps = 0 follows from
// the engine's row identity.
#include "ccap/info/batch_lattice.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace ccap::info {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

void check_symbols(std::span<const std::uint8_t> seq, unsigned alphabet, const char* what) {
    for (std::uint8_t s : seq)
        if (s >= alphabet)
            throw std::out_of_range(std::string("DriftHmm: ") + what +
                                    " symbol out of alphabet");
}

/// Lockstep shape check: every lane must share one transmitted length.
std::size_t lockstep_tx_len(std::span<const DriftHmm::SymbolSpan> transmitted,
                            const char* who) {
    const std::size_t n = transmitted.empty() ? 0 : transmitted[0].size();
    for (const auto& t : transmitted)
        if (t.size() != n)
            throw std::invalid_argument(std::string(who) +
                                        ": lockstep lanes need equal transmitted lengths");
    return n;
}

/// Emission-plane fill for tx-conditioned operations: the value at lane l
/// is emit_tab[rxr[l] * alphabet + tx_l], a gather no vector path can
/// touch. The binary-alphabet fast path (every Monte-Carlo and watermark
/// channel) caches two per-row lane vectors — the emissions a lane would
/// produce for received 0 and received 1 — and the per-drift fill becomes
/// the engine's dispatched select kernels. Every selected value is the
/// exact table entry the gather would have loaded (the scalar reference
/// select and the vector blends pick the same bits), so all paths are
/// bit-identical. Loops run over the padded lane stride; selector pads are
/// valid symbol 0, so pad entries stay finite.
struct TxEmitPlane {
    const DriftTables* tables;
    unsigned alphabet;
    const std::uint8_t* tx;  // SoA pack: symbol of lane l at row j is tx[j * lanes + l]
    std::size_t lanes;       // padded lane stride (BatchLatticeEngine::lane_stride())
    std::span<double> e01;  // 2 * lanes scratch: emissions for received 0 | received 1
    const LaneKernels* kernels;
    std::size_t cached_row = static_cast<std::size_t>(-1);

    void operator()(double* __restrict ed, std::size_t j, const std::uint8_t* __restrict rxr) {
        const std::size_t L = lanes;
        const std::uint8_t* txr = tx + j * L;
        const double* tab = tables->emit_tab.data();
        if (alphabet == 2) {
            const double* e0 = e01.data();
            const double* e1 = e01.data() + L;
            if (j != cached_row) {
                kernels->select_const(e01.data(), txr, tab[0], tab[1], L);
                kernels->select_const(e01.data() + L, txr, tab[2], tab[3], L);
                cached_row = j;
            }
            kernels->select_lanes(ed, rxr, e0, e1, L);
        } else {
            for (std::size_t l = 0; l < L; ++l)
                ed[l] = tab[static_cast<std::size_t>(rxr[l]) * alphabet + txr[l]];
        }
    }
};

/// Emission-plane fill for prior-weighted operations: the factor depends
/// only on (row, received symbol), so each row costs alphabet dot
/// products (bit-matching LatticeEngine::emit_prior) and the per-drift
/// fill is a tiny-table lookup — a two-scalar select when binary.
struct PriorEmitPlane {
    const util::Matrix* priors;
    const DriftTables* tables;
    unsigned alphabet;
    std::size_t lanes;  // padded lane stride (BatchLatticeEngine::lane_stride())
    std::span<double> vals;
    const LaneKernels* kernels;
    std::size_t cached_row = static_cast<std::size_t>(-1);

    void operator()(double* __restrict ed, std::size_t j, const std::uint8_t* __restrict rxr) {
        if (j != cached_row) {
            const auto q = priors->row(j);
            for (unsigned rr = 0; rr < alphabet; ++rr) {
                const double* row =
                    tables->emit_tab.data() + static_cast<std::size_t>(rr) * alphabet;
                double e = 0.0;
                for (std::size_t s = 0; s < q.size(); ++s) e += q[s] * row[s];
                vals[rr] = e;
            }
            cached_row = j;
        }
        const std::size_t L = lanes;
        if (alphabet == 2) {
            // Same exact-table-entry select as TxEmitPlane.
            kernels->select_const(ed, rxr, vals[0], vals[1], L);
        } else {
            for (std::size_t l = 0; l < L; ++l) ed[l] = vals[rxr[l]];
        }
    }
};

/// Per-lane-parameter variant of TxEmitPlane: the emission table differs by
/// lane, so the two cached per-row lane vectors select between the engine's
/// SoA emission-table planes instead of two scalar entries. Every selected
/// value is the exact per-lane table entry a scalar gather would load, so
/// all SIMD paths stay bit-identical. Padding columns of the planes
/// replicate lane 0 and the selector pads are valid symbol 0, so pad
/// entries stay finite.
struct TxEmitPlanePerLane {
    const BatchLatticeEngine* eng;
    unsigned alphabet;
    const std::uint8_t* tx;  // SoA pack: symbol of lane l at row j is tx[j * lanes + l]
    std::size_t lanes;       // padded lane stride (BatchLatticeEngine::lane_stride())
    std::span<double> e01;   // 2 * lanes scratch: emissions for received 0 | received 1
    const LaneKernels* kernels;
    std::size_t cached_row = static_cast<std::size_t>(-1);

    void operator()(double* __restrict ed, std::size_t j, const std::uint8_t* __restrict rxr) {
        const std::size_t L = lanes;
        const std::uint8_t* txr = tx + j * L;
        if (alphabet == 2) {
            const double* e0 = e01.data();
            const double* e1 = e01.data() + L;
            if (j != cached_row) {
                kernels->select_lanes(e01.data(), txr, eng->etab_plane(0, 0),
                                      eng->etab_plane(0, 1), L);
                kernels->select_lanes(e01.data() + L, txr, eng->etab_plane(1, 0),
                                      eng->etab_plane(1, 1), L);
                cached_row = j;
            }
            kernels->select_lanes(ed, rxr, e0, e1, L);
        } else {
            for (std::size_t l = 0; l < L; ++l) ed[l] = eng->emit_lane(l, rxr[l], txr[l]);
        }
    }
};

/// Per-lane-parameter variant of PriorEmitPlane: each row costs alphabet
/// per-lane dot products accumulated with the axpy kernel — the multiply
/// q[s] * etab[r][s] matches LatticeEngine::emit_prior bit for bit (IEEE
/// multiplication commutes, adds run in the same s-ascending order).
struct PriorEmitPlanePerLane {
    const util::Matrix* priors;
    const BatchLatticeEngine* eng;
    unsigned alphabet;
    std::size_t lanes;       // padded lane stride
    std::span<double> vals;  // alphabet * lanes plane: row r's per-lane factors
    const LaneKernels* kernels;
    std::size_t cached_row = static_cast<std::size_t>(-1);

    void operator()(double* __restrict ed, std::size_t j, const std::uint8_t* __restrict rxr) {
        const std::size_t L = lanes;
        if (j != cached_row) {
            const auto q = priors->row(j);
            for (unsigned rr = 0; rr < alphabet; ++rr) {
                double* vr = vals.data() + static_cast<std::size_t>(rr) * L;
                std::fill(vr, vr + L, 0.0);
                for (std::size_t s = 0; s < q.size(); ++s)
                    kernels->axpy(vr, eng->etab_plane(static_cast<std::uint8_t>(rr),
                                                      static_cast<std::uint8_t>(s)),
                                  q[s], L);
            }
            cached_row = j;
        }
        if (alphabet == 2) {
            kernels->select_lanes(ed, rxr, vals.data(), vals.data() + L, L);
        } else {
            for (std::size_t l = 0; l < L; ++l)
                ed[l] = vals[static_cast<std::size_t>(rxr[l]) * L + l];
        }
    }
};

void check_priors(const util::Matrix& priors, unsigned alphabet, const char* who) {
    if (priors.cols() != alphabet)
        throw std::invalid_argument(std::string(who) + ": priors cols != alphabet");
    if (!priors.is_row_stochastic(1e-6) && priors.rows() > 0)
        throw std::invalid_argument(std::string(who) + ": priors not row-stochastic");
}

}  // namespace

std::vector<BandedEvidence> DriftHmm::log2_likelihood_batch(
    std::span<const SymbolSpan> transmitted, std::span<const SymbolSpan> received,
    LatticeWorkspace& ws) const {
    if (transmitted.size() != received.size())
        throw std::invalid_argument("DriftHmm::log2_likelihood_batch: lane count mismatch");
    const std::size_t L = transmitted.size();
    std::vector<BandedEvidence> out(L);
    if (L == 0) return out;
    const std::size_t n = lockstep_tx_len(transmitted, "DriftHmm::log2_likelihood_batch");
    for (std::size_t l = 0; l < L; ++l) {
        check_symbols(transmitted[l], params_.alphabet, "transmitted");
        check_symbols(received[l], params_.alphabet, "received");
    }

    BatchLatticeEngine eng(params_, *tables_, received, n, ws);
    const std::size_t Lp = eng.lane_stride();
    const std::span<std::uint8_t> tx = ws.tx_bytes(std::max<std::size_t>(1, n * Lp));
    std::fill(tx.begin(), tx.end(), 0);  // pad lanes carry valid symbol 0
    for (std::size_t l = 0; l < L; ++l)
        for (std::size_t j = 0; j < n; ++j) tx[j * Lp + l] = transmitted[l][j];
    TxEmitPlane emit_pt{tables_.get(), params_.alphabet, tx.data(),
                        Lp,            ws.scratch2(2 * Lp), &eng.kernels()};
    eng.forward(emit_pt, params_.band_eps);
    for (std::size_t l = 0; l < L; ++l) out[l] = eng.evidence(l);
    return out;
}

std::vector<BandedEvidence> DriftHmm::log2_prior_marginal_batch(
    const util::Matrix& priors, std::span<const SymbolSpan> received,
    LatticeWorkspace& ws) const {
    check_priors(priors, params_.alphabet, "DriftHmm::log2_prior_marginal_batch");
    const std::size_t L = received.size();
    std::vector<BandedEvidence> out(L);
    if (L == 0) return out;
    for (std::size_t l = 0; l < L; ++l)
        check_symbols(received[l], params_.alphabet, "received");

    BatchLatticeEngine eng(params_, *tables_, received, priors.rows(), ws);
    PriorEmitPlane emit_p{&priors,
                          tables_.get(),
                          params_.alphabet,
                          eng.lane_stride(),
                          ws.scratch3(params_.alphabet),
                          &eng.kernels()};
    eng.forward(emit_p, params_.band_eps);
    for (std::size_t l = 0; l < L; ++l) out[l] = eng.evidence(l);
    return out;
}

std::vector<util::Matrix> DriftHmm::posteriors_batch(
    const util::Matrix& priors, std::span<const SymbolSpan> received, LatticeWorkspace& ws,
    std::vector<double>* log2_evidence) const {
    check_priors(priors, params_.alphabet, "DriftHmm::posteriors_batch");
    const std::size_t L = received.size();
    const std::size_t n = priors.rows();
    const unsigned m_alpha = params_.alphabet;
    for (std::size_t l = 0; l < L; ++l)
        check_symbols(received[l], m_alpha, "received");

    std::vector<util::Matrix> out;
    out.reserve(L);
    for (std::size_t l = 0; l < L; ++l) out.emplace_back(n, m_alpha);
    if (log2_evidence != nullptr) log2_evidence->assign(L, kNegInf);
    if (L == 0) return out;

    BatchLatticeEngine eng(params_, *tables_, received, n, ws);
    PriorEmitPlane emit_p{&priors,        tables_.get(),       m_alpha,
                          eng.lane_stride(), ws.scratch3(m_alpha), &eng.kernels()};
    eng.forward(emit_p, params_.band_eps);
    eng.backward(emit_p);

    if (log2_evidence != nullptr)
        for (std::size_t l = 0; l < L; ++l)
            (*log2_evidence)[l] = eng.evidence(l).log2_evidence;

    // Per-lane combine mirroring the scalar posteriors loop with strided
    // lane reads. The union band adds only cells whose alpha or beta is
    // exactly zero, which the same skips the scalar code has drop.
    const auto& ins_pow = tables_->ins_pow;
    const std::span<double> w = ws.scratch2(m_alpha);
    const std::size_t Lp = eng.lane_stride();
    for (std::size_t l = 0; l < L; ++l) {
        util::Matrix& post = out[l];
        const SymbolSpan rx = received[l];
        for (std::size_t j = 1; j <= n; ++j) {
            std::fill(w.begin(), w.end(), 0.0);
            double w_del = 0.0;
            int blo = 0, bhi = -1;
            const bool beta_live = eng.beta_window(j, blo, bhi);
            const double* arow = eng.alpha_row(j - 1);
            const double* brow = eng.beta_row(j);
            for (int dp = eng.band_lo(j - 1); dp <= eng.band_hi(j - 1); ++dp) {
                const double ap = arow[eng.idx(dp) * Lp + l];
                if (ap == 0.0) continue;
                const std::size_t r0 =
                    static_cast<std::size_t>(static_cast<long long>(j - 1) + dp);
                for (int g = 0; g <= params_.max_insert_run; ++g) {
                    const int d = dp + g - 1;
                    if (!beta_live || d < blo || d > bhi) continue;
                    const std::size_t r1 = r0 + static_cast<std::size_t>(g);
                    const double beta = brow[eng.idx(d) * Lp + l];
                    if (beta == 0.0) continue;
                    w_del += ap * ins_pow[static_cast<std::size_t>(g)] * params_.p_d * beta;
                    if (g >= 1) {
                        const double base = ap * ins_pow[static_cast<std::size_t>(g - 1)] *
                                            params_.p_t() * beta;
                        const std::uint8_t r = rx[r1 - 1];
                        for (unsigned s = 0; s < m_alpha; ++s)
                            w[s] += base * eng.emit(r, static_cast<std::uint8_t>(s));
                    }
                }
            }
            double norm = 0.0;
            for (unsigned s = 0; s < m_alpha; ++s) {
                const double v = priors(j - 1, s) * (w[s] + w_del);
                post(j - 1, s) = v;
                norm += v;
            }
            if (norm > 0.0) {
                for (unsigned s = 0; s < m_alpha; ++s) post(j - 1, s) /= norm;
            } else {
                for (unsigned s = 0; s < m_alpha; ++s) post(j - 1, s) = priors(j - 1, s);
            }
        }
    }
    return out;
}

std::vector<DriftHmm::EventExpectations> DriftHmm::expected_events_batch(
    std::span<const SymbolSpan> transmitted, std::span<const SymbolSpan> received,
    LatticeWorkspace& ws) const {
    if (transmitted.size() != received.size())
        throw std::invalid_argument("DriftHmm::expected_events_batch: lane count mismatch");
    const std::size_t L = transmitted.size();
    std::vector<EventExpectations> out(L);
    if (L == 0) return out;
    const std::size_t n = lockstep_tx_len(transmitted, "DriftHmm::expected_events_batch");
    for (std::size_t l = 0; l < L; ++l) {
        check_symbols(transmitted[l], params_.alphabet, "transmitted");
        check_symbols(received[l], params_.alphabet, "received");
    }

    BatchLatticeEngine eng(params_, *tables_, received, n, ws);
    const std::size_t Lp = eng.lane_stride();
    const std::span<std::uint8_t> tx = ws.tx_bytes(std::max<std::size_t>(1, n * Lp));
    std::fill(tx.begin(), tx.end(), 0);  // pad lanes carry valid symbol 0
    for (std::size_t l = 0; l < L; ++l)
        for (std::size_t j = 0; j < n; ++j) tx[j * Lp + l] = transmitted[l][j];
    TxEmitPlane emit_pt{tables_.get(), params_.alphabet, tx.data(),
                        Lp,            ws.scratch2(2 * Lp), &eng.kernels()};
    eng.forward(emit_pt, params_.band_eps);
    eng.backward(emit_pt);

    const auto& ins_pow = tables_->ins_pow;
    for (std::size_t l = 0; l < L; ++l) {
        EventExpectations& o = out[l];
        const SymbolSpan rx = received[l];
        const double tail = eng.tail(l);
        if (tail <= 0.0 || eng.alpha_scale(n, l) == kNegInf) {
            o.log2_likelihood = kNegInf;
            continue;
        }
        const double log2_evidence = eng.alpha_scale(n, l) + std::log2(tail);
        o.log2_likelihood = log2_evidence;

        for (std::size_t j = 1; j <= n; ++j) {
            const double log2_factor =
                eng.alpha_scale(j - 1, l) + eng.beta_scale(j, l) - log2_evidence;
            if (log2_factor < -300.0) continue;
            const double factor = std::exp2(log2_factor);
            const std::uint8_t sym = transmitted[l][j - 1];
            int blo = 0, bhi = -1;
            const bool beta_live = eng.beta_window(j, blo, bhi);
            const double* arow = eng.alpha_row(j - 1);
            const double* brow = eng.beta_row(j);
            for (int dp = eng.band_lo(j - 1); dp <= eng.band_hi(j - 1); ++dp) {
                const double alpha = arow[eng.idx(dp) * Lp + l];
                if (alpha == 0.0) continue;
                const std::size_t r0 =
                    static_cast<std::size_t>(static_cast<long long>(j - 1) + dp);
                for (int g = 0; g <= params_.max_insert_run; ++g) {
                    const int d = dp + g - 1;
                    if (!beta_live || d < blo || d > bhi) continue;
                    const std::size_t r1 = r0 + static_cast<std::size_t>(g);
                    const double beta = brow[eng.idx(d) * Lp + l];
                    if (beta == 0.0) continue;
                    const double w_del = alpha * ins_pow[static_cast<std::size_t>(g)] *
                                         params_.p_d * beta * factor;
                    if (w_del > 0.0) {
                        o.deletions += w_del;
                        o.insertions += w_del * static_cast<double>(g);
                    }
                    if (g >= 1) {
                        const std::uint8_t r = rx[r1 - 1];
                        const double w_tx = alpha *
                                            ins_pow[static_cast<std::size_t>(g - 1)] *
                                            params_.p_t() * eng.emit(r, sym) * beta * factor;
                        if (w_tx > 0.0) {
                            o.transmissions += w_tx;
                            o.insertions += w_tx * static_cast<double>(g - 1);
                            if (r != sym) o.substitutions += w_tx;
                        }
                    }
                }
            }
        }
        const double* last = eng.alpha_row(n);
        for (int d = eng.band_lo(n); d <= eng.band_hi(n); ++d) {
            const double w_tr = last[eng.idx(d) * Lp + l] * eng.trailing(l, d) / tail;
            const long long rest =
                static_cast<long long>(eng.m(l)) - (static_cast<long long>(n) + d);
            if (w_tr > 0.0 && rest > 0) o.insertions += w_tr * static_cast<double>(rest);
        }
    }
    return out;
}

std::vector<BandedEvidence> log2_likelihood_batch_per_lane(
    std::span<const DriftParams> lane_params,
    std::span<const std::span<const std::uint8_t>> transmitted,
    std::span<const std::span<const std::uint8_t>> received, LatticeWorkspace& ws,
    double band_eps) {
    if (transmitted.size() != received.size() || transmitted.size() != lane_params.size())
        throw std::invalid_argument("log2_likelihood_batch_per_lane: lane count mismatch");
    const std::size_t L = transmitted.size();
    std::vector<BandedEvidence> out(L);
    if (L == 0) return out;
    const std::size_t n = lockstep_tx_len(transmitted, "log2_likelihood_batch_per_lane");
    const unsigned alphabet = lane_params[0].alphabet;
    for (std::size_t l = 0; l < L; ++l) {
        check_symbols(transmitted[l], alphabet, "transmitted");
        check_symbols(received[l], alphabet, "received");
    }

    BatchLatticeEngine eng(lane_params, received, n, ws);
    const std::size_t Lp = eng.lane_stride();
    const std::span<std::uint8_t> tx = ws.tx_bytes(std::max<std::size_t>(1, n * Lp));
    std::fill(tx.begin(), tx.end(), 0);  // pad lanes carry valid symbol 0
    for (std::size_t l = 0; l < L; ++l)
        for (std::size_t j = 0; j < n; ++j) tx[j * Lp + l] = transmitted[l][j];
    TxEmitPlanePerLane emit_pt{&eng, alphabet,           tx.data(),
                               Lp,   ws.scratch2(2 * Lp), &eng.kernels()};
    eng.forward(emit_pt, band_eps);
    for (std::size_t l = 0; l < L; ++l) out[l] = eng.evidence(l);
    return out;
}

std::vector<BandedEvidence> log2_prior_marginal_batch_per_lane(
    std::span<const DriftParams> lane_params, const util::Matrix& priors,
    std::span<const std::span<const std::uint8_t>> received, LatticeWorkspace& ws,
    double band_eps) {
    if (received.size() != lane_params.size())
        throw std::invalid_argument(
            "log2_prior_marginal_batch_per_lane: lane count mismatch");
    const std::size_t L = received.size();
    std::vector<BandedEvidence> out(L);
    if (L == 0) return out;
    const unsigned alphabet = lane_params[0].alphabet;
    check_priors(priors, alphabet, "log2_prior_marginal_batch_per_lane");
    for (std::size_t l = 0; l < L; ++l) check_symbols(received[l], alphabet, "received");

    BatchLatticeEngine eng(lane_params, received, priors.rows(), ws);
    const std::size_t Lp = eng.lane_stride();
    PriorEmitPlanePerLane emit_p{&priors, &eng, alphabet, Lp,
                                 ws.scratch3(static_cast<std::size_t>(alphabet) * Lp),
                                 &eng.kernels()};
    eng.forward(emit_p, band_eps);
    for (std::size_t l = 0; l < L; ++l) out[l] = eng.evidence(l);
    return out;
}

}  // namespace ccap::info
