#include "ccap/info/capacity_cache.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace ccap::info {

namespace {

std::int32_t clamp_index(double value, double step, std::int32_t max_index) {
    if (!(value > 0.0)) return 0;
    const auto i = static_cast<std::int32_t>(std::lround(value / step));
    return std::clamp<std::int32_t>(i, 0, max_index);
}

}  // namespace

CapacityCache::CapacityCache(Config cfg)
    : cfg_(cfg),
      ipd_max_(0),
      ipi_max_(0),
      cache_(cfg.shards, cfg.per_shard_capacity) {
    const CapacityGridSpec& g = cfg_.grid;
    if (!(g.pd_step > 0.0) || !(g.pi_step > 0.0))
        throw std::invalid_argument("CapacityCache: grid steps must be > 0");
    if (!(g.pd_max >= 0.0) || !(g.pi_max >= 0.0) || g.pd_max + g.pi_max >= 1.0)
        throw std::invalid_argument("CapacityCache: grid maxima must satisfy pd+pi < 1");
    ipd_max_ = static_cast<std::int32_t>(std::floor(g.pd_max / g.pd_step + 1e-9));
    ipi_max_ = static_cast<std::int32_t>(std::floor(g.pi_max / g.pi_step + 1e-9));
    if (cfg_.target_interp_err < 0.0)
        throw std::invalid_argument("CapacityCache: target_interp_err must be >= 0");
    if (cfg_.target_interp_err > 0.0) {
        // interpolate() charges 1.96 * sem per node, so a per-node SEM of
        // err / 1.96 delivers the requested confidence radius. Baked into
        // the Config once, here, so every node evaluation path shares it.
        const double sem_target = cfg_.target_interp_err / 1.96;
        if (!(cfg_.mc.target_sem > 0.0) || sem_target < cfg_.mc.target_sem)
            cfg_.mc.target_sem = sem_target;
    }
    // Validate the extreme node up front so bad base params fail fast.
    node_params({ipd_max_, ipi_max_}).validate();
}

CapacityKey CapacityCache::quantize(double pd, double pi) const noexcept {
    return {clamp_index(pd, cfg_.grid.pd_step, ipd_max_),
            clamp_index(pi, cfg_.grid.pi_step, ipi_max_)};
}

DriftParams CapacityCache::node_params(CapacityKey key) const noexcept {
    DriftParams p = cfg_.base;
    p.p_d = static_cast<double>(key.ipd) * cfg_.grid.pd_step;
    p.p_i = static_cast<double>(key.ipi) * cfg_.grid.pi_step;
    return p;
}

MiEstimate CapacityCache::compute(CapacityKey key) const {
    const CapacityPoint point{node_params(key), node_seed(key)};
    return iid_mutual_information_rate_points(std::span(&point, 1), node_mc_options())[0];
}

MiEstimate CapacityCache::at(CapacityKey key) {
    if (!cfg_.enabled) return compute(key);
    return cache_.get_or_compute(key, [this](const CapacityKey& k) { return compute(k); });
}

void CapacityCache::ensure(std::span<const CapacityKey> keys, unsigned threads) {
    if (!cfg_.enabled) return;
    std::vector<CapacityKey> missing;
    {
        std::unordered_set<CapacityKey, CapacityKeyHash> seen;
        for (const CapacityKey& k : keys)
            if (seen.insert(k).second && !cache_.find(k)) missing.push_back(k);
    }
    if (missing.empty()) return;
    std::vector<CapacityPoint> points;
    points.reserve(missing.size());
    for (const CapacityKey& k : missing) points.push_back({node_params(k), node_seed(k)});
    McOptions opts = node_mc_options();
    opts.threads = threads;
    const std::vector<MiEstimate> values =
        iid_mutual_information_rate_points(points, opts);
    for (std::size_t i = 0; i < missing.size(); ++i) cache_.insert(missing[i], values[i]);
}

CapacityCache::Interpolated CapacityCache::interpolate(double pd, double pi) {
    const CapacityGridSpec& g = cfg_.grid;
    const double fd = std::clamp(pd / g.pd_step, 0.0, static_cast<double>(ipd_max_));
    const double fi = std::clamp(pi / g.pi_step, 0.0, static_cast<double>(ipi_max_));
    const auto i0 = static_cast<std::int32_t>(std::floor(fd));
    const auto j0 = static_cast<std::int32_t>(std::floor(fi));
    const std::int32_t i1 = std::min(i0 + 1, ipd_max_);
    const std::int32_t j1 = std::min(j0 + 1, ipi_max_);
    const double td = fd - static_cast<double>(i0);
    const double ti = fi - static_cast<double>(j0);

    const MiEstimate c00 = at({i0, j0});
    Interpolated out;
    if (td == 0.0 && ti == 0.0) {
        out.rate = c00.rate;
        // Adaptive nodes stop on their realized SEM, so this radius — and
        // the blocks/converged report — reflects what the node actually
        // ran, not the nominal num_blocks.
        out.err_bound = 1.96 * c00.sem;
        out.exact = true;
        out.blocks = c00.blocks;
        out.converged = c00.converged;
        return out;
    }
    const MiEstimate c10 = at({i1, j0});
    const MiEstimate c01 = at({i0, j1});
    const MiEstimate c11 = at({i1, j1});
    out.rate = (1.0 - td) * ((1.0 - ti) * c00.rate + ti * c01.rate) +
               td * ((1.0 - ti) * c10.rate + ti * c11.rate);
    // Monotone bracket: capacity is non-increasing in both P_d and P_i, so
    // truth lies in [min corner, max corner]; so does the bilinear blend
    // (its weights are a convex combination). Add the corners' MC radius.
    const double cmax = std::max({c00.rate, c10.rate, c01.rate, c11.rate});
    const double cmin = std::min({c00.rate, c10.rate, c01.rate, c11.rate});
    const double sem = std::max({c00.sem, c10.sem, c01.sem, c11.sem});
    out.err_bound = (cmax - cmin) + 1.96 * sem;
    out.exact = false;
    out.blocks = c00.blocks + c10.blocks + c01.blocks + c11.blocks;
    out.converged = c00.converged && c10.converged && c01.converged && c11.converged;
    return out;
}

}  // namespace ccap::info
