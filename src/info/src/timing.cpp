#include "ccap/info/timing.hpp"

#include <cmath>
#include <stdexcept>

#include "ccap/util/solvers.hpp"

namespace ccap::info {

double timing_capacity(std::span<const double> durations) {
    if (durations.size() <= 1) return 0.0;
    double tmin = durations.front();
    for (double t : durations) {
        if (!(t > 0.0)) throw std::domain_error("timing_capacity: durations must be > 0");
        tmin = std::min(tmin, t);
    }
    const auto g = [&](double x) {
        double s = -1.0;
        for (double t : durations) s += std::pow(x, -t);
        return s;
    };
    // g is strictly decreasing for x >= 1; g(1) = m - 1 > 0. Find an upper
    // bracket: all m symbols no shorter than tmin gives root <= m^{1/tmin}.
    const double hi = std::pow(static_cast<double>(durations.size()), 1.0 / tmin) + 1.0;
    const double x0 = util::bisect(g, 1.0, hi, 1e-13).x;
    return std::log2(x0);
}

double stc_capacity(std::span<const double> tick_durations) {
    return timing_capacity(tick_durations);
}

TimedZResult timed_z_capacity(double p, double t0, double t1) {
    if (!(t0 > 0.0) || !(t1 > 0.0))
        throw std::domain_error("timed_z_capacity: durations must be > 0");
    if (p < 0.0 || p > 1.0) throw std::domain_error("timed_z_capacity: p outside [0,1]");
    TimedZResult res;
    if (p >= 1.0) return res;  // '1' never gets through: zero capacity
    const Dmc z = make_z_channel(p);
    // Cost of sending '1': with prob p it is *received* as 0; in the timed
    // Z-channel model of Moskowitz et al. the transmission still occupies the
    // sender for t1 (the duration is a property of the input symbol).
    const std::vector<double> costs = {t0, t1};
    const PerCostResult r = capacity_per_unit_cost(z, costs);
    res.capacity_per_time = r.capacity_per_cost;
    res.optimal_p1 = r.optimal_input.size() == 2 ? r.optimal_input[1] : 0.0;
    res.converged = r.converged;
    return res;
}

double dmc_capacity_per_time(const Dmc& channel, std::span<const double> durations) {
    return capacity_per_unit_cost(channel, durations).capacity_per_cost;
}

}  // namespace ccap::info
