// AVX2 lane kernels (4 doubles per op).
//
// Compiled with exactly `-march=x86-64 -mtune=generic -mavx2
// -ffp-contract=off` (src/info/CMakeLists.txt): the source-level flags
// override any target-level -march=native so this TU contains AVX2 and
// nothing wider, and no FMA contraction can fuse the separate multiply/add
// intrinsics below. Every op is elementwise IEEE-754, so each lane
// computes exactly what the scalar reference kernel computes; the selects
// blend exact table entries (selector bytes are validated symbols in
// {0, 1}), matching the scalar arithmetic select bit for bit.
#include "ccap/info/lattice_simd.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstring>

namespace ccap::info {

namespace {

constexpr std::size_t kW = 4;

/// Zero-extend 4 selector bytes to 4 x 64-bit lanes.
inline __m256i load_sel4(const std::uint8_t* sel) {
    std::uint32_t packed;
    std::memcpy(&packed, sel, sizeof packed);
    return _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(packed)));
}

void k_axpy(double* dst, const double* src, double w, std::size_t L) {
    const __m256d wv = _mm256_set1_pd(w);
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m256d d = _mm256_loadu_pd(dst + l);
        const __m256d s = _mm256_loadu_pd(src + l);
        _mm256_storeu_pd(dst + l, _mm256_add_pd(d, _mm256_mul_pd(s, wv)));
    }
    for (; l < L; ++l) dst[l] += src[l] * w;
}

void k_fma_weighted(double* dst, const double* src, double dw, double tw, const double* e,
                    std::size_t L) {
    const __m256d dwv = _mm256_set1_pd(dw);
    const __m256d twv = _mm256_set1_pd(tw);
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m256d ev = _mm256_loadu_pd(e + l);
        const __m256d wv = _mm256_add_pd(dwv, _mm256_mul_pd(twv, ev));
        const __m256d d = _mm256_loadu_pd(dst + l);
        const __m256d s = _mm256_loadu_pd(src + l);
        _mm256_storeu_pd(dst + l, _mm256_add_pd(d, _mm256_mul_pd(s, wv)));
    }
    for (; l < L; ++l) dst[l] += src[l] * (dw + tw * e[l]);
}

void k_accumulate(double* acc, const double* src, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m256d a = _mm256_loadu_pd(acc + l);
        const __m256d s = _mm256_loadu_pd(src + l);
        _mm256_storeu_pd(acc + l, _mm256_add_pd(a, s));
    }
    for (; l < L; ++l) acc[l] += src[l];
}

void k_maximum(double* acc, const double* src, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m256d a = _mm256_loadu_pd(acc + l);
        const __m256d s = _mm256_loadu_pd(src + l);
        _mm256_storeu_pd(acc + l, _mm256_max_pd(a, s));
    }
    for (; l < L; ++l) acc[l] = acc[l] < src[l] ? src[l] : acc[l];
}

void k_divide(double* dst, const double* norm, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m256d d = _mm256_loadu_pd(dst + l);
        const __m256d n = _mm256_loadu_pd(norm + l);
        _mm256_storeu_pd(dst + l, _mm256_div_pd(d, n));
    }
    for (; l < L; ++l) dst[l] /= norm[l];
}

void k_select_const(double* ed, const std::uint8_t* sel, double v0, double v1,
                    std::size_t L) {
    const __m256d v0v = _mm256_set1_pd(v0);
    const __m256d v1v = _mm256_set1_pd(v1);
    const __m256i zero = _mm256_setzero_si256();
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        // All-ones where sel == 0; blendv picks its second operand there.
        const __m256d is0 =
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(load_sel4(sel + l), zero));
        _mm256_storeu_pd(ed + l, _mm256_blendv_pd(v1v, v0v, is0));
    }
    for (; l < L; ++l) ed[l] = sel[l] ? v1 : v0;
}

void k_select_lanes(double* ed, const std::uint8_t* sel, const double* e0, const double* e1,
                    std::size_t L) {
    const __m256i zero = _mm256_setzero_si256();
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m256d is0 =
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(load_sel4(sel + l), zero));
        const __m256d a = _mm256_loadu_pd(e0 + l);
        const __m256d b = _mm256_loadu_pd(e1 + l);
        _mm256_storeu_pd(ed + l, _mm256_blendv_pd(b, a, is0));
    }
    for (; l < L; ++l) ed[l] = sel[l] ? e1[l] : e0[l];
}

void k_fma_run(double* dst, const double* src, const double* dw, const double* tw,
               const double* e, std::size_t runs, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m256d s = _mm256_loadu_pd(src + l);  // reused across the run
        for (std::size_t g = 0; g < runs; ++g) {
            double* d = dst + g * L + l;
            const __m256d ev = _mm256_loadu_pd(e + g * L + l);
            const __m256d wv =
                _mm256_add_pd(_mm256_set1_pd(dw[g]), _mm256_mul_pd(_mm256_set1_pd(tw[g]), ev));
            _mm256_storeu_pd(d, _mm256_add_pd(_mm256_loadu_pd(d), _mm256_mul_pd(s, wv)));
        }
    }
    for (; l < L; ++l)
        for (std::size_t g = 0; g < runs; ++g)
            dst[g * L + l] += src[l] * (dw[g] + tw[g] * e[g * L + l]);
}

void k_fma_acc_run(double* acc, const double* src, const double* dw, const double* tw,
                   const double* e, std::size_t runs, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        __m256d a = _mm256_loadu_pd(acc + l);
        for (std::size_t g = 0; g < runs; ++g) {  // g-ascending: unfused add order
            const __m256d sv = _mm256_loadu_pd(src + g * L + l);
            const __m256d ev = _mm256_loadu_pd(e + g * L + l);
            const __m256d wv =
                _mm256_add_pd(_mm256_set1_pd(dw[g]), _mm256_mul_pd(_mm256_set1_pd(tw[g]), ev));
            a = _mm256_add_pd(a, _mm256_mul_pd(sv, wv));
        }
        _mm256_storeu_pd(acc + l, a);
    }
    for (; l < L; ++l)
        for (std::size_t g = 0; g < runs; ++g)
            acc[l] += src[g * L + l] * (dw[g] + tw[g] * e[g * L + l]);
}

void k_fma_dest_run(double* dst, const double* src, const double* dw, const double* tw,
                    const double* e, const double* src_del, double w_del,
                    std::size_t cnt, std::size_t L) {
    const __m256d wdel = _mm256_set1_pd(w_del);
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m256d ev = _mm256_loadu_pd(e + l);  // unused garbage when cnt == 0
        __m256d a = _mm256_setzero_pd();
        for (std::size_t i = 0; i < cnt; ++i) {
            const std::ptrdiff_t gi = -static_cast<std::ptrdiff_t>(i);
            const __m256d sv = _mm256_loadu_pd(src + i * L + l);
            const __m256d wv =
                _mm256_add_pd(_mm256_set1_pd(dw[gi]), _mm256_mul_pd(_mm256_set1_pd(tw[gi]), ev));
            a = _mm256_add_pd(a, _mm256_mul_pd(sv, wv));
        }
        if (src_del) a = _mm256_add_pd(a, _mm256_mul_pd(_mm256_loadu_pd(src_del + l), wdel));
        _mm256_storeu_pd(dst + l, a);
    }
    for (; l < L; ++l) {
        double a = 0.0;
        for (std::size_t i = 0; i < cnt; ++i) {
            const std::ptrdiff_t gi = -static_cast<std::ptrdiff_t>(i);
            a += src[i * L + l] * (dw[gi] + tw[gi] * e[l]);
        }
        if (src_del) a += src_del[l] * w_del;
        dst[l] = a;
    }
}

constexpr LaneKernels kAvx2Kernels = {
    k_axpy,         k_fma_weighted, k_accumulate, k_maximum,     k_divide,
    k_select_const, k_select_lanes, k_fma_run,    k_fma_acc_run,
    k_fma_dest_run, "avx2",         kW,           util::SimdPath::avx2,
};

}  // namespace

const LaneKernels* lane_kernels_avx2() noexcept { return &kAvx2Kernels; }

}  // namespace ccap::info

#endif  // x86
