// AVX2 lane kernels (4 doubles per op).
//
// Compiled with exactly `-march=x86-64 -mtune=generic -mavx2
// -ffp-contract=off` (src/info/CMakeLists.txt): the source-level flags
// override any target-level -march=native so this TU contains AVX2 and
// nothing wider, and no FMA contraction can fuse the separate multiply/add
// intrinsics below. Every op is elementwise IEEE-754, so each lane
// computes exactly what the scalar reference kernel computes; the selects
// blend exact table entries (selector bytes are validated symbols in
// {0, 1}), matching the scalar arithmetic select bit for bit.
//
// Ragged tails (L not a multiple of 4) run one masked vector iteration via
// vmaskmovpd instead of a scalar loop: masked-out lanes are neither read nor
// written (the instruction architecturally suppresses their memory access,
// so a tail at the end of a buffer cannot fault), loads fill them with 0.0,
// and the arithmetic on those dead lanes is discarded by the masked store.
// Live lanes see the identical elementwise operations, so tail results stay
// bit-identical to the scalar reference.
#include "ccap/info/lattice_simd.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstring>

namespace ccap::info {

namespace {

constexpr std::size_t kW = 4;

/// Zero-extend 4 selector bytes to 4 x 64-bit lanes.
inline __m256i load_sel4(const std::uint8_t* sel) {
    std::uint32_t packed;
    std::memcpy(&packed, sel, sizeof packed);
    return _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(packed)));
}

/// Zero-extend only `rem` < 4 selector bytes; the rest decode as symbol 0.
/// The partial memcpy never reads past sel[rem-1].
inline __m256i load_sel_tail(const std::uint8_t* sel, std::size_t rem) {
    std::uint32_t packed = 0;
    std::memcpy(&packed, sel, rem);
    return _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(packed)));
}

/// All-ones in lanes [0, rem), zero above — the vmaskmovpd lane mask.
inline __m256i tail_mask(std::size_t rem) {
    const __m256i lane = _mm256_set_epi64x(3, 2, 1, 0);
    return _mm256_cmpgt_epi64(_mm256_set1_epi64x(static_cast<long long>(rem)), lane);
}

inline __m256d mload(const double* p, __m256i m) { return _mm256_maskload_pd(p, m); }
inline void mstore(double* p, __m256i m, __m256d v) { _mm256_maskstore_pd(p, m, v); }

void k_axpy(double* dst, const double* src, double w, std::size_t L) {
    const __m256d wv = _mm256_set1_pd(w);
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m256d d = _mm256_loadu_pd(dst + l);
        const __m256d s = _mm256_loadu_pd(src + l);
        _mm256_storeu_pd(dst + l, _mm256_add_pd(d, _mm256_mul_pd(s, wv)));
    }
    if (l < L) {
        const __m256i m = tail_mask(L - l);
        const __m256d d = mload(dst + l, m);
        const __m256d s = mload(src + l, m);
        mstore(dst + l, m, _mm256_add_pd(d, _mm256_mul_pd(s, wv)));
    }
}

void k_fma_weighted(double* dst, const double* src, double dw, double tw, const double* e,
                    std::size_t L) {
    const __m256d dwv = _mm256_set1_pd(dw);
    const __m256d twv = _mm256_set1_pd(tw);
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m256d ev = _mm256_loadu_pd(e + l);
        const __m256d wv = _mm256_add_pd(dwv, _mm256_mul_pd(twv, ev));
        const __m256d d = _mm256_loadu_pd(dst + l);
        const __m256d s = _mm256_loadu_pd(src + l);
        _mm256_storeu_pd(dst + l, _mm256_add_pd(d, _mm256_mul_pd(s, wv)));
    }
    if (l < L) {
        const __m256i m = tail_mask(L - l);
        const __m256d ev = mload(e + l, m);
        const __m256d wv = _mm256_add_pd(dwv, _mm256_mul_pd(twv, ev));
        const __m256d d = mload(dst + l, m);
        const __m256d s = mload(src + l, m);
        mstore(dst + l, m, _mm256_add_pd(d, _mm256_mul_pd(s, wv)));
    }
}

void k_accumulate(double* acc, const double* src, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m256d a = _mm256_loadu_pd(acc + l);
        const __m256d s = _mm256_loadu_pd(src + l);
        _mm256_storeu_pd(acc + l, _mm256_add_pd(a, s));
    }
    if (l < L) {
        const __m256i m = tail_mask(L - l);
        mstore(acc + l, m, _mm256_add_pd(mload(acc + l, m), mload(src + l, m)));
    }
}

void k_maximum(double* acc, const double* src, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m256d a = _mm256_loadu_pd(acc + l);
        const __m256d s = _mm256_loadu_pd(src + l);
        _mm256_storeu_pd(acc + l, _mm256_max_pd(a, s));
    }
    if (l < L) {
        const __m256i m = tail_mask(L - l);
        mstore(acc + l, m, _mm256_max_pd(mload(acc + l, m), mload(src + l, m)));
    }
}

void k_divide(double* dst, const double* norm, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m256d d = _mm256_loadu_pd(dst + l);
        const __m256d n = _mm256_loadu_pd(norm + l);
        _mm256_storeu_pd(dst + l, _mm256_div_pd(d, n));
    }
    if (l < L) {
        // Dead lanes divide 0/0 -> NaN; the masked store discards them and
        // nothing in the library inspects the FP status flags.
        const __m256i m = tail_mask(L - l);
        mstore(dst + l, m, _mm256_div_pd(mload(dst + l, m), mload(norm + l, m)));
    }
}

void k_select_const(double* ed, const std::uint8_t* sel, double v0, double v1,
                    std::size_t L) {
    const __m256d v0v = _mm256_set1_pd(v0);
    const __m256d v1v = _mm256_set1_pd(v1);
    const __m256i zero = _mm256_setzero_si256();
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        // All-ones where sel == 0; blendv picks its second operand there.
        const __m256d is0 =
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(load_sel4(sel + l), zero));
        _mm256_storeu_pd(ed + l, _mm256_blendv_pd(v1v, v0v, is0));
    }
    if (l < L) {
        const std::size_t rem = L - l;
        const __m256d is0 =
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(load_sel_tail(sel + l, rem), zero));
        mstore(ed + l, tail_mask(rem), _mm256_blendv_pd(v1v, v0v, is0));
    }
}

void k_select_lanes(double* ed, const std::uint8_t* sel, const double* e0, const double* e1,
                    std::size_t L) {
    const __m256i zero = _mm256_setzero_si256();
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m256d is0 =
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(load_sel4(sel + l), zero));
        const __m256d a = _mm256_loadu_pd(e0 + l);
        const __m256d b = _mm256_loadu_pd(e1 + l);
        _mm256_storeu_pd(ed + l, _mm256_blendv_pd(b, a, is0));
    }
    if (l < L) {
        const std::size_t rem = L - l;
        const __m256i m = tail_mask(rem);
        const __m256d is0 =
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(load_sel_tail(sel + l, rem), zero));
        mstore(ed + l, m, _mm256_blendv_pd(mload(e1 + l, m), mload(e0 + l, m), is0));
    }
}

void k_fma_run(double* dst, const double* src, const double* dw, const double* tw,
               const double* e, std::size_t runs, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m256d s = _mm256_loadu_pd(src + l);  // reused across the run
        for (std::size_t g = 0; g < runs; ++g) {
            double* d = dst + g * L + l;
            const __m256d ev = _mm256_loadu_pd(e + g * L + l);
            const __m256d wv =
                _mm256_add_pd(_mm256_set1_pd(dw[g]), _mm256_mul_pd(_mm256_set1_pd(tw[g]), ev));
            _mm256_storeu_pd(d, _mm256_add_pd(_mm256_loadu_pd(d), _mm256_mul_pd(s, wv)));
        }
    }
    if (l < L) {
        const __m256i m = tail_mask(L - l);
        const __m256d s = mload(src + l, m);
        for (std::size_t g = 0; g < runs; ++g) {
            double* d = dst + g * L + l;
            const __m256d ev = mload(e + g * L + l, m);
            const __m256d wv =
                _mm256_add_pd(_mm256_set1_pd(dw[g]), _mm256_mul_pd(_mm256_set1_pd(tw[g]), ev));
            mstore(d, m, _mm256_add_pd(mload(d, m), _mm256_mul_pd(s, wv)));
        }
    }
}

void k_fma_acc_run(double* acc, const double* src, const double* dw, const double* tw,
                   const double* e, std::size_t runs, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        __m256d a = _mm256_loadu_pd(acc + l);
        for (std::size_t g = 0; g < runs; ++g) {  // g-ascending: unfused add order
            const __m256d sv = _mm256_loadu_pd(src + g * L + l);
            const __m256d ev = _mm256_loadu_pd(e + g * L + l);
            const __m256d wv =
                _mm256_add_pd(_mm256_set1_pd(dw[g]), _mm256_mul_pd(_mm256_set1_pd(tw[g]), ev));
            a = _mm256_add_pd(a, _mm256_mul_pd(sv, wv));
        }
        _mm256_storeu_pd(acc + l, a);
    }
    if (l < L) {
        const __m256i m = tail_mask(L - l);
        __m256d a = mload(acc + l, m);
        for (std::size_t g = 0; g < runs; ++g) {
            const __m256d sv = mload(src + g * L + l, m);
            const __m256d ev = mload(e + g * L + l, m);
            const __m256d wv =
                _mm256_add_pd(_mm256_set1_pd(dw[g]), _mm256_mul_pd(_mm256_set1_pd(tw[g]), ev));
            a = _mm256_add_pd(a, _mm256_mul_pd(sv, wv));
        }
        mstore(acc + l, m, a);
    }
}

void k_fma_dest_run(double* dst, const double* src, const double* dw, const double* tw,
                    const double* e, const double* src_del, double w_del,
                    std::size_t cnt, std::size_t L) {
    const __m256d wdel = _mm256_set1_pd(w_del);
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m256d ev = _mm256_loadu_pd(e + l);  // unused garbage when cnt == 0
        __m256d a = _mm256_setzero_pd();
        for (std::size_t i = 0; i < cnt; ++i) {
            const std::ptrdiff_t gi = -static_cast<std::ptrdiff_t>(i);
            const __m256d sv = _mm256_loadu_pd(src + i * L + l);
            const __m256d wv =
                _mm256_add_pd(_mm256_set1_pd(dw[gi]), _mm256_mul_pd(_mm256_set1_pd(tw[gi]), ev));
            a = _mm256_add_pd(a, _mm256_mul_pd(sv, wv));
        }
        if (src_del) a = _mm256_add_pd(a, _mm256_mul_pd(_mm256_loadu_pd(src_del + l), wdel));
        _mm256_storeu_pd(dst + l, a);
    }
    if (l < L) {
        const __m256i m = tail_mask(L - l);
        const __m256d ev = mload(e + l, m);
        __m256d a = _mm256_setzero_pd();
        for (std::size_t i = 0; i < cnt; ++i) {
            const std::ptrdiff_t gi = -static_cast<std::ptrdiff_t>(i);
            const __m256d sv = mload(src + i * L + l, m);
            const __m256d wv =
                _mm256_add_pd(_mm256_set1_pd(dw[gi]), _mm256_mul_pd(_mm256_set1_pd(tw[gi]), ev));
            a = _mm256_add_pd(a, _mm256_mul_pd(sv, wv));
        }
        if (src_del) a = _mm256_add_pd(a, _mm256_mul_pd(mload(src_del + l, m), wdel));
        mstore(dst + l, m, a);
    }
}

void k_axpy_lanes(double* dst, const double* src, const double* w, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m256d d = _mm256_loadu_pd(dst + l);
        const __m256d s = _mm256_loadu_pd(src + l);
        _mm256_storeu_pd(dst + l,
                         _mm256_add_pd(d, _mm256_mul_pd(s, _mm256_loadu_pd(w + l))));
    }
    if (l < L) {
        const __m256i m = tail_mask(L - l);
        const __m256d d = mload(dst + l, m);
        const __m256d s = mload(src + l, m);
        mstore(dst + l, m, _mm256_add_pd(d, _mm256_mul_pd(s, mload(w + l, m))));
    }
}

void k_fma_acc_run_pl(double* acc, const double* src, const double* dw, const double* tw,
                      const double* e, std::size_t runs, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        __m256d a = _mm256_loadu_pd(acc + l);
        for (std::size_t g = 0; g < runs; ++g) {  // g-ascending: unfused add order
            const __m256d sv = _mm256_loadu_pd(src + g * L + l);
            const __m256d ev = _mm256_loadu_pd(e + g * L + l);
            const __m256d wv = _mm256_add_pd(
                _mm256_loadu_pd(dw + g * L + l),
                _mm256_mul_pd(_mm256_loadu_pd(tw + g * L + l), ev));
            a = _mm256_add_pd(a, _mm256_mul_pd(sv, wv));
        }
        _mm256_storeu_pd(acc + l, a);
    }
    if (l < L) {
        const __m256i m = tail_mask(L - l);
        __m256d a = mload(acc + l, m);
        for (std::size_t g = 0; g < runs; ++g) {
            const __m256d sv = mload(src + g * L + l, m);
            const __m256d ev = mload(e + g * L + l, m);
            const __m256d wv = _mm256_add_pd(
                mload(dw + g * L + l, m), _mm256_mul_pd(mload(tw + g * L + l, m), ev));
            a = _mm256_add_pd(a, _mm256_mul_pd(sv, wv));
        }
        mstore(acc + l, m, a);
    }
}

void k_fma_dest_run_pl(double* dst, const double* src, const double* dw, const double* tw,
                       const double* e, const double* src_del, const double* w_del,
                       std::size_t cnt, std::size_t L) {
    std::size_t l = 0;
    for (; l + kW <= L; l += kW) {
        const __m256d ev = _mm256_loadu_pd(e + l);  // unused garbage when cnt == 0
        __m256d a = _mm256_setzero_pd();
        for (std::size_t i = 0; i < cnt; ++i) {
            const std::ptrdiff_t gi =
                -static_cast<std::ptrdiff_t>(i * L) + static_cast<std::ptrdiff_t>(l);
            const __m256d sv = _mm256_loadu_pd(src + i * L + l);
            const __m256d wv = _mm256_add_pd(
                _mm256_loadu_pd(dw + gi), _mm256_mul_pd(_mm256_loadu_pd(tw + gi), ev));
            a = _mm256_add_pd(a, _mm256_mul_pd(sv, wv));
        }
        if (src_del)
            a = _mm256_add_pd(a, _mm256_mul_pd(_mm256_loadu_pd(src_del + l),
                                               _mm256_loadu_pd(w_del + l)));
        _mm256_storeu_pd(dst + l, a);
    }
    if (l < L) {
        const __m256i m = tail_mask(L - l);
        const __m256d ev = mload(e + l, m);
        __m256d a = _mm256_setzero_pd();
        for (std::size_t i = 0; i < cnt; ++i) {
            const std::ptrdiff_t gi =
                -static_cast<std::ptrdiff_t>(i * L) + static_cast<std::ptrdiff_t>(l);
            const __m256d sv = mload(src + i * L + l, m);
            const __m256d wv =
                _mm256_add_pd(mload(dw + gi, m), _mm256_mul_pd(mload(tw + gi, m), ev));
            a = _mm256_add_pd(a, _mm256_mul_pd(sv, wv));
        }
        if (src_del)
            a = _mm256_add_pd(a,
                              _mm256_mul_pd(mload(src_del + l, m), mload(w_del + l, m)));
        mstore(dst + l, m, a);
    }
}

constexpr LaneKernels kAvx2Kernels = {
    k_axpy,         k_fma_weighted, k_accumulate,     k_maximum,     k_divide,
    k_select_const, k_select_lanes, k_fma_run,        k_fma_acc_run,
    k_fma_dest_run, k_axpy_lanes,   k_fma_acc_run_pl, k_fma_dest_run_pl,
    "avx2",         kW,             util::SimdPath::avx2,
};

}  // namespace

const LaneKernels* lane_kernels_avx2() noexcept { return &kAvx2Kernels; }

}  // namespace ccap::info

#endif  // x86
