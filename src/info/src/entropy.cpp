#include "ccap/info/entropy.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "ccap/util/solvers.hpp"

namespace ccap::info {

double xlog2x(double x) noexcept { return x > 0.0 ? x * std::log2(x) : 0.0; }

double binary_entropy(double p) {
    if (p < 0.0 || p > 1.0) throw std::domain_error("binary_entropy: p outside [0,1]");
    return -xlog2x(p) - xlog2x(1.0 - p);
}

double binary_entropy_inverse(double h) {
    if (h < 0.0 || h > 1.0) throw std::domain_error("binary_entropy_inverse: h outside [0,1]");
    if (h == 0.0) return 0.0;
    if (h == 1.0) return 0.5;
    // H is strictly increasing on [0, 1/2]; bisect H(p) - h.
    return util::bisect([h](double p) { return binary_entropy(p) - h; }, 0.0, 0.5, 1e-14).x;
}

namespace {
void check_distribution(std::span<const double> p, const char* who) {
    double sum = 0.0;
    for (double v : p) {
        if (v < 0.0) throw std::domain_error(std::string(who) + ": negative probability");
        sum += v;
    }
    if (std::abs(sum - 1.0) > 1e-6)
        throw std::domain_error(std::string(who) + ": probabilities do not sum to 1");
}
}  // namespace

double entropy(std::span<const double> p) {
    check_distribution(p, "entropy");
    double h = 0.0;
    for (double v : p) h -= xlog2x(v);
    return h;
}

double kl_divergence(std::span<const double> p, std::span<const double> q) {
    if (p.size() != q.size()) throw std::invalid_argument("kl_divergence: size mismatch");
    check_distribution(p, "kl_divergence(p)");
    check_distribution(q, "kl_divergence(q)");
    double d = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
        if (p[i] == 0.0) continue;
        if (q[i] == 0.0) return std::numeric_limits<double>::infinity();
        d += p[i] * std::log2(p[i] / q[i]);
    }
    return d < 0.0 && d > -1e-12 ? 0.0 : d;  // clamp tiny negative round-off
}

double mutual_information(const util::Matrix& joint) {
    double total = 0.0;
    for (double v : joint.flat()) {
        if (v < 0.0) throw std::domain_error("mutual_information: negative joint probability");
        total += v;
    }
    if (std::abs(total - 1.0) > 1e-6)
        throw std::domain_error("mutual_information: joint does not sum to 1");

    std::vector<double> px(joint.rows(), 0.0), py(joint.cols(), 0.0);
    for (std::size_t x = 0; x < joint.rows(); ++x)
        for (std::size_t y = 0; y < joint.cols(); ++y) {
            px[x] += joint(x, y);
            py[y] += joint(x, y);
        }
    double mi = 0.0;
    for (std::size_t x = 0; x < joint.rows(); ++x)
        for (std::size_t y = 0; y < joint.cols(); ++y) {
            const double pxy = joint(x, y);
            if (pxy > 0.0) mi += pxy * std::log2(pxy / (px[x] * py[y]));
        }
    return mi < 0.0 && mi > -1e-12 ? 0.0 : mi;
}

double mutual_information(std::span<const double> input, const util::Matrix& channel) {
    if (input.size() != channel.rows())
        throw std::invalid_argument("mutual_information: input size != channel rows");
    check_distribution(input, "mutual_information(input)");
    if (!channel.is_row_stochastic(1e-6))
        throw std::domain_error("mutual_information: channel not row-stochastic");
    util::Matrix joint(channel.rows(), channel.cols());
    for (std::size_t x = 0; x < channel.rows(); ++x)
        for (std::size_t y = 0; y < channel.cols(); ++y) joint(x, y) = input[x] * channel(x, y);
    return mutual_information(joint);
}

double mary_symmetric_entropy_penalty(double p, unsigned m) {
    if (m < 2) throw std::invalid_argument("mary_symmetric_entropy_penalty: m < 2");
    return binary_entropy(p) + p * std::log2(static_cast<double>(m) - 1.0);
}

double mary_symmetric_capacity(double p, unsigned m) {
    return std::log2(static_cast<double>(m)) - mary_symmetric_entropy_penalty(p, m);
}

}  // namespace ccap::info
