// Marker (synchronization-pattern) codes for insertion/deletion channels.
//
// The oldest practical defence against synchronization errors: a fixed,
// publicly known marker pattern is woven into the stream every `period`
// data bits. The decoder knows where markers *should* be, so the drift HMM
// can track insertions/deletions using the markers as anchors, and the
// data-bit posteriors it emits feed a conventional outer code (here: soft
// Viterbi over a convolutional code).
//
// Encoding layout per block:  d_1..d_P  M  d_{P+1}..d_{2P}  M ... (marker M
// after every P data bits, including after the final partial group).
#pragma once

#include <optional>

#include "ccap/coding/bitvec.hpp"
#include "ccap/coding/convolutional.hpp"
#include "ccap/info/drift_hmm.hpp"

namespace ccap::coding {

struct MarkerParams {
    Bits marker = {0, 0, 1};  ///< marker pattern
    std::size_t period = 8;   ///< data bits between markers
    double data_prior_one = 0.5;  ///< decoder's prior on each data bit
};

class MarkerCode {
public:
    explicit MarkerCode(MarkerParams params);

    [[nodiscard]] const MarkerParams& params() const noexcept { return params_; }

    /// Stream length after inserting markers into `data_len` data bits.
    [[nodiscard]] std::size_t encoded_length(std::size_t data_len) const noexcept;
    /// Code rate data/(data+markers) for a given data length.
    [[nodiscard]] double rate(std::size_t data_len) const noexcept;

    [[nodiscard]] Bits encode(std::span<const std::uint8_t> data) const;

    struct SoftDecode {
        std::vector<double> posterior_one;  ///< P(data bit = 1 | received)
        Bits hard;                          ///< thresholded decisions
    };
    /// Per-data-bit posteriors via the drift HMM with marker positions
    /// pinned. `data_len` is the number of data bits originally encoded.
    [[nodiscard]] SoftDecode decode_soft(std::span<const std::uint8_t> received,
                                         std::size_t data_len,
                                         const info::DriftParams& channel) const;

    /// Full pipeline: convolutionally encode info bits, weave markers,
    /// (channel happens outside), then decode soft and Viterbi-correct.
    [[nodiscard]] Bits encode_with_outer(const ConvolutionalCode& outer,
                                         std::span<const std::uint8_t> info) const;
    [[nodiscard]] Bits decode_with_outer(const ConvolutionalCode& outer,
                                         std::span<const std::uint8_t> received,
                                         std::size_t info_len,
                                         const info::DriftParams& channel) const;

private:
    /// Per-position transmitted-bit priors for a stream of `data_len` data bits.
    [[nodiscard]] util::Matrix build_priors(std::size_t data_len) const;
    MarkerParams params_;
};

}  // namespace ccap::coding
