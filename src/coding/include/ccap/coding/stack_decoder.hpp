// Sequential (stack) decoding of convolutional codes over channels with
// drop-outs and insertions — Zigangirov (Problemy Peredachi Informatsii,
// 1969), the paper's reference [12] and the original demonstration that
// coded communication over synchronization-error channels is practical.
//
// The decoder explores the code tree best-first. A hypothesis is
// (trellis step, trellis state, received-stream position); extending it by
// one input bit emits n coded bits, which the channel may have deleted,
// transmitted or interleaved with insertions — the branch likelihood over
// each possible number of consumed received bits comes from a miniature
// drift forward pass. Metrics are Fano-normalized: each consumed received
// bit contributes log2 P(rx segment | branch) + bias, with bias = log2(M)
// (the self-information of a random received symbol), so hypotheses at
// different received positions are comparable.
//
// Hypotheses are deduplicated on (step, state, position); the search stops
// at the first completed path (best-first ⇒ likelihood-ordered) or when
// the expansion budget runs out.
#pragma once

#include <cstdint>

#include "ccap/coding/convolutional.hpp"

namespace ccap::coding {

struct StackDecoderParams {
    double p_d = 0.0;   ///< channel deletion probability per use
    double p_i = 0.0;   ///< channel insertion probability per use
    double p_s = 0.0;   ///< substitution probability given transmission
    int max_insert_run = 6;          ///< per-coded-bit insertion truncation
    std::size_t max_expansions = 200000;  ///< node-expansion budget

    void validate() const;
};

struct StackDecodeResult {
    Bits info;                   ///< decoded information bits (empty on failure)
    bool success = false;        ///< a full path reached the end of the trellis
    std::size_t expansions = 0;  ///< nodes expanded
    double metric = 0.0;         ///< Fano metric of the winning path
};

/// Decode `info_len` information bits from `received` (a terminated
/// codeword passed through the indel channel).
[[nodiscard]] StackDecodeResult stack_decode(const ConvolutionalCode& code,
                                             std::span<const std::uint8_t> received,
                                             std::size_t info_len,
                                             const StackDecoderParams& params);

}  // namespace ccap::coding
