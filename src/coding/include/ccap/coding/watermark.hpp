// Davey-MacKay watermark codes (IEEE Trans. IT 2001) — the paper's
// reference [13] and the strongest known practical scheme for reliable,
// completely unsynchronized communication over deletion-insertion channels.
//
// Construction: information is encoded by an outer non-binary LDPC code
// over GF(q = 2^k); each GF(q) symbol is mapped to a sparse binary chunk of
// n_c bits (the q lowest-weight strings); the concatenated sparse stream is
// XORed with a pseudo-random *watermark* known to both parties. Because the
// sparse stream is mostly zero, the received stream statistically resembles
// the watermark, letting the receiver's drift HMM track insertions and
// deletions; the per-chunk likelihoods it produces feed the LDPC decoder.
//
// The achieved rate (k_ldpc * k) / (n_symbols * n_c) bits per channel bit,
// multiplied by the block success rate, is the "quite low" practical
// capacity the paper's Section 4.1 contrasts with synchronized operation.
#pragma once

#include <cstdint>
#include <optional>

#include "ccap/coding/bitvec.hpp"
#include "ccap/coding/ldpc_gf.hpp"
#include "ccap/info/drift_hmm.hpp"

namespace ccap::coding {

struct WatermarkParams {
    unsigned bits_per_symbol = 4;   ///< k: outer code over GF(2^k)
    unsigned chunk_bits = 6;        ///< n_c: sparse chunk length (> k)
    std::size_t num_symbols = 60;   ///< outer codeword length in symbols
    std::size_t num_checks = 20;    ///< LDPC parity checks
    unsigned ldpc_var_degree = 3;
    std::uint64_t watermark_seed = 0xACE1;
    std::uint64_t ldpc_seed = 0xBEEF;
};

class WatermarkCode {
public:
    explicit WatermarkCode(WatermarkParams params);

    [[nodiscard]] const WatermarkParams& params() const noexcept { return params_; }
    [[nodiscard]] const NbLdpcCode& outer() const noexcept { return ldpc_; }

    /// Information bits per block.
    [[nodiscard]] std::size_t info_bits() const noexcept {
        return ldpc_.k() * params_.bits_per_symbol;
    }
    /// Transmitted (channel) bits per block.
    [[nodiscard]] std::size_t channel_bits() const noexcept {
        return params_.num_symbols * params_.chunk_bits;
    }
    /// Design rate in information bits per transmitted bit.
    [[nodiscard]] double rate() const noexcept {
        return static_cast<double>(info_bits()) / static_cast<double>(channel_bits());
    }

    /// Mean density of ones in the sparse stream (decoder prior).
    [[nodiscard]] double sparse_density() const noexcept { return density_; }

    [[nodiscard]] Bits encode(std::span<const std::uint8_t> info) const;

    struct DecodeResult {
        Bits info;             ///< decoded information bits
        bool ldpc_converged = false;
        int ldpc_iterations = 0;
    };
    /// The workspace overload runs the inner drift-HMM trellis in
    /// caller-owned flat arenas (ccap/info/lattice_engine.hpp), making
    /// repeated decodes allocation-free on the lattice side; the other
    /// overload leases a thread-local workspace.
    [[nodiscard]] DecodeResult decode(std::span<const std::uint8_t> received,
                                      const info::DriftParams& channel,
                                      int ldpc_iterations = 60) const;
    [[nodiscard]] DecodeResult decode(std::span<const std::uint8_t> received,
                                      const info::DriftParams& channel, int ldpc_iterations,
                                      info::LatticeWorkspace& ws) const;

private:
    WatermarkParams params_;
    NbLdpcCode ldpc_;
    Bits watermark_;                                  // channel_bits() long
    std::vector<std::vector<std::uint8_t>> codebook_;  // q sparse chunks
    double density_ = 0.0;
};

/// The q lowest-weight binary strings of length n_c (ties broken
/// lexicographically) — the Davey-MacKay sparsifier codebook.
[[nodiscard]] std::vector<std::vector<std::uint8_t>> sparse_codebook(unsigned q,
                                                                     unsigned chunk_bits);

}  // namespace ccap::coding
