// Non-binary LDPC codes over GF(2^m) with sum-product decoding.
//
// This is the outer code of the Davey-MacKay watermark construction
// (IEEE Trans. IT 2001): symbol-level sparse parity checks over GF(q)
// whose decoder consumes the per-symbol likelihood vectors produced by the
// drift-HMM inner decoder. The construction is a random near-regular
// bipartite graph (variable degree d_v, balanced check degrees) with random
// nonzero edge coefficients; encoding is systematic via Gaussian
// elimination of H over GF(q).
#pragma once

#include <cstdint>
#include <vector>

#include "ccap/coding/gf.hpp"
#include "ccap/util/matrix.hpp"

namespace ccap::coding {

struct NbLdpcParams {
    unsigned field_m = 4;      ///< GF(2^m); Davey-MacKay use m=4 (GF(16))
    std::size_t n = 100;       ///< codeword length in symbols
    std::size_t num_checks = 50;  ///< parity checks (design redundancy)
    unsigned var_degree = 3;   ///< edges per variable node
    std::uint64_t seed = 1;    ///< construction seed
};

struct NbLdpcDecodeResult {
    std::vector<std::uint16_t> symbols;  ///< hard decisions, length n
    bool converged = false;              ///< all checks satisfied
    int iterations = 0;
};

class NbLdpcCode {
public:
    explicit NbLdpcCode(NbLdpcParams params);

    [[nodiscard]] const GaloisField& field() const noexcept { return gf_; }
    [[nodiscard]] std::size_t n() const noexcept { return params_.n; }
    /// Actual information symbols: n - rank(H). (Equals n - num_checks when
    /// the random H has full rank, which the constructor retries for.)
    [[nodiscard]] std::size_t k() const noexcept { return info_cols_.size(); }
    [[nodiscard]] double rate() const noexcept {
        return static_cast<double>(k()) / static_cast<double>(n());
    }

    /// Systematic encode: info symbols land in the non-pivot columns in
    /// increasing column order; parity symbols are solved from H.
    [[nodiscard]] std::vector<std::uint16_t> encode(std::span<const std::uint16_t> info) const;

    /// Extract the info symbols back out of a codeword.
    [[nodiscard]] std::vector<std::uint16_t> extract_info(
        std::span<const std::uint16_t> codeword) const;

    /// True iff H * word == 0.
    [[nodiscard]] bool check(std::span<const std::uint16_t> word) const;

    /// Sum-product decode from per-symbol likelihoods (n x q, rows
    /// normalized or not; they are renormalized internally).
    [[nodiscard]] NbLdpcDecodeResult decode(const util::Matrix& likelihoods,
                                            int max_iterations = 50) const;

private:
    struct Edge {
        std::uint32_t var = 0;
        std::uint32_t chk = 0;
        std::uint16_t coeff = 1;
    };

    void build_graph(std::uint64_t seed);
    void gaussian_eliminate();

    NbLdpcParams params_;
    GaloisField gf_;
    std::vector<Edge> edges_;
    std::vector<std::vector<std::uint32_t>> var_edges_;  // edge ids per variable
    std::vector<std::vector<std::uint32_t>> chk_edges_;  // edge ids per check
    // Reduced row-echelon form of H for systematic encoding.
    std::vector<std::vector<std::uint16_t>> rref_;       // rank rows x n
    std::vector<std::uint32_t> pivot_cols_;              // parity positions
    std::vector<std::uint32_t> info_cols_;               // info positions
};

}  // namespace ccap::coding
