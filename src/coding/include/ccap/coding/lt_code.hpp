// LT fountain codes (Luby, FOCS 2002) with a robust-soliton degree
// distribution and a peeling decoder.
//
// Why they live in this repository: Theorem 1 bounds the covert channel by
// the capacity of the *matched erasure channel* (Definition 2 — drop-out
// locations known). Fountain codes are the constructive counterpart: over a
// channel whose erasure locations are known, they deliver the source at
// rate approaching (1 - P_d) with no feedback at all, which is exactly what
// makes the Theorem-1 bound "the capacity of the erasure channel" rather
// than a loose artifact (bench X4 runs this end-to-end over the
// DeletionInsertionChannel's erasure view).
//
// Symbols are opaque 32-bit values (XOR-combinable), so one LT symbol can
// carry an N-bit covert channel symbol directly.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace ccap::coding {

struct LtParams {
    std::size_t k = 100;     ///< number of source symbols
    double c = 0.1;          ///< robust soliton constant
    double delta = 0.5;      ///< decoder failure probability target
    std::uint64_t seed = 1;  ///< shared encoder/decoder seed

    void validate() const;
};

class LtCode {
public:
    explicit LtCode(LtParams params);

    [[nodiscard]] const LtParams& params() const noexcept { return params_; }
    [[nodiscard]] std::size_t k() const noexcept { return params_.k; }

    /// Source indices XOR-combined into encoded symbol `index`
    /// (deterministic given the shared seed).
    [[nodiscard]] std::vector<std::size_t> neighbors(std::uint64_t index) const;

    /// Value of encoded symbol `index` for the given source block.
    [[nodiscard]] std::uint32_t encode_symbol(std::uint64_t index,
                                              std::span<const std::uint32_t> source) const;

    /// The robust-soliton distribution (for tests/inspection); sums to 1,
    /// entry d-1 is P(degree = d).
    [[nodiscard]] const std::vector<double>& degree_distribution() const noexcept {
        return degree_pmf_;
    }

private:
    LtParams params_;
    std::vector<double> degree_pmf_;
    std::vector<double> degree_cdf_;
};

/// Incremental peeling decoder: feed (index, value) pairs of received
/// encoded symbols in any order; query completion.
class LtDecoder {
public:
    explicit LtDecoder(const LtCode& code);

    /// Add one received encoded symbol. Returns true if the source block is
    /// fully decoded afterwards. Duplicate indices are ignored.
    bool add_symbol(std::uint64_t index, std::uint32_t value);

    [[nodiscard]] bool complete() const noexcept { return decoded_count_ == code_->k(); }
    [[nodiscard]] std::size_t decoded_count() const noexcept { return decoded_count_; }
    [[nodiscard]] std::size_t symbols_consumed() const noexcept { return consumed_; }

    /// Decoded source block; entries are nullopt until recovered.
    [[nodiscard]] const std::vector<std::optional<std::uint32_t>>& source() const noexcept {
        return source_;
    }

private:
    struct Pending {
        std::vector<std::size_t> remaining;  ///< unresolved source neighbors
        std::uint32_t value = 0;
    };
    void resolve(std::size_t source_index, std::uint32_t value);

    const LtCode* code_;
    std::vector<std::optional<std::uint32_t>> source_;
    std::vector<Pending> pending_;
    std::vector<std::vector<std::size_t>> by_source_;  // pending ids touching source i
    std::vector<std::uint64_t> seen_indices_;
    std::size_t decoded_count_ = 0;
    std::size_t consumed_ = 0;
};

}  // namespace ccap::coding
