// Viterbi maximum-likelihood decoding of terminated convolutional codes.
//
// Hard-decision decoding takes received bits; soft-decision decoding takes
// per-bit log-likelihood ratios LLR = log2 P(bit=0)/P(bit=1), which is what
// the drift-HMM inner decoder naturally produces.
#pragma once

#include <vector>

#include "ccap/coding/convolutional.hpp"

namespace ccap::coding {

struct ViterbiResult {
    Bits info;              ///< decoded information bits (terminator removed)
    double path_metric = 0; ///< winning metric (hamming distance / -sum LLR)
    bool terminated_ok = false;  ///< survivor ended in state 0 as expected
};

/// Hard-decision decode. `received.size()` must be a multiple of the code's
/// rate denominator and correspond to info_len = steps - (K-1) >= 0 bits.
[[nodiscard]] ViterbiResult viterbi_decode_hard(const ConvolutionalCode& code,
                                                std::span<const std::uint8_t> received);

/// Soft-decision decode from bit LLRs (positive favours 0).
[[nodiscard]] ViterbiResult viterbi_decode_soft(const ConvolutionalCode& code,
                                                std::span<const double> llrs);

}  // namespace ccap::coding
