// Table-driven CRC-16-CCITT and CRC-32 (IEEE 802.3) over bit sequences.
//
// Used by the covert-channel protocols to verify end-to-end message
// integrity after decoding, and by tests as a ground-truth corruption
// detector. Operates directly on {0,1} bit vectors so fractional-byte
// covert payloads don't need padding.
#pragma once

#include <cstdint>
#include <span>

#include "ccap/coding/bitvec.hpp"

namespace ccap::coding {

/// CRC-16-CCITT (poly 0x1021, init 0xFFFF, no reflection), bitwise.
[[nodiscard]] std::uint16_t crc16(std::span<const std::uint8_t> bits);

/// CRC-32 IEEE (poly 0x04C11DB7 reflected = 0xEDB88320, init/xorout 0xFFFFFFFF).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bits);

/// Append a 16-bit CRC (MSB-first) to the message bits.
[[nodiscard]] Bits append_crc16(std::span<const std::uint8_t> bits);

/// True iff the trailing 16 bits are the CRC of the prefix.
[[nodiscard]] bool verify_crc16(std::span<const std::uint8_t> bits_with_crc);

}  // namespace ccap::coding
