// Feed-forward rate-1/n convolutional codes.
//
// Zigangirov's 1969 sequential-decoding result (the paper's reference [12])
// was the first demonstration that convolutional codes make communication
// over drop-out/insertion channels possible; we use the same code family as
// the substitution-correcting layer in the coded-transmission experiments
// and as the outer code in the marker-code pipeline.
#pragma once

#include <cstdint>
#include <vector>

#include "ccap/coding/bitvec.hpp"

namespace ccap::coding {

/// Generator polynomials are given in the usual octal-style binary
/// convention: bit k of the polynomial taps the input delayed by k. E.g. the
/// classic K=3 rate-1/2 code is {0b111, 0b101} (7,5).
class ConvolutionalCode {
public:
    ConvolutionalCode(std::vector<std::uint32_t> generators, unsigned constraint_length);

    [[nodiscard]] unsigned constraint_length() const noexcept { return k_; }
    [[nodiscard]] unsigned rate_denominator() const noexcept {
        return static_cast<unsigned>(generators_.size());
    }
    [[nodiscard]] unsigned num_states() const noexcept { return 1U << (k_ - 1); }
    [[nodiscard]] const std::vector<std::uint32_t>& generators() const noexcept {
        return generators_;
    }

    /// Encode with `k-1` terminating zero bits appended (trellis returns to
    /// state 0). Output length = (info.size() + k - 1) * n.
    [[nodiscard]] Bits encode(std::span<const std::uint8_t> info) const;

    /// Output bits for one trellis step from `state` with input `bit`.
    /// Also returns the next state via out-parameter-free struct.
    struct Step {
        std::uint32_t next_state = 0;
        std::uint32_t output = 0;  ///< n output bits, MSB = first generator
    };
    [[nodiscard]] Step step(std::uint32_t state, std::uint8_t bit) const noexcept;

private:
    std::vector<std::uint32_t> generators_;
    unsigned k_;
};

}  // namespace ccap::coding
