// Finite-field arithmetic over GF(2^m), 1 <= m <= 12, via log/antilog
// tables built from standard primitive polynomials. Used by the non-binary
// LDPC outer code of the Davey-MacKay watermark construction.
#pragma once

#include <cstdint>
#include <vector>

namespace ccap::coding {

class GaloisField {
public:
    /// GF(2^m). Throws for m outside [1, 12].
    explicit GaloisField(unsigned m);

    [[nodiscard]] unsigned m() const noexcept { return m_; }
    [[nodiscard]] unsigned size() const noexcept { return q_; }  ///< q = 2^m

    [[nodiscard]] std::uint16_t add(std::uint16_t a, std::uint16_t b) const noexcept {
        return a ^ b;  // characteristic 2
    }
    [[nodiscard]] std::uint16_t sub(std::uint16_t a, std::uint16_t b) const noexcept {
        return a ^ b;
    }
    [[nodiscard]] std::uint16_t mul(std::uint16_t a, std::uint16_t b) const;
    [[nodiscard]] std::uint16_t div(std::uint16_t a, std::uint16_t b) const;
    [[nodiscard]] std::uint16_t inv(std::uint16_t a) const;
    [[nodiscard]] std::uint16_t pow(std::uint16_t a, std::uint64_t e) const;

    /// alpha^i for the field's primitive element alpha.
    [[nodiscard]] std::uint16_t alpha_pow(unsigned i) const {
        return exp_[i % (q_ - 1)];
    }

private:
    void check_element(std::uint16_t a) const;
    unsigned m_;
    unsigned q_;
    std::vector<std::uint16_t> exp_;  // exp_[i] = alpha^i, size q-1
    std::vector<std::uint16_t> log_;  // log_[a] = i with alpha^i = a, a != 0
};

}  // namespace ccap::coding
