// Block and pseudo-random interleavers.
//
// Synchronization-error decoders concentrate residual errors in bursts
// around mis-tracked drift; interleaving before an outer code spreads those
// bursts so the outer decoder sees near-independent errors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ccap/coding/bitvec.hpp"

namespace ccap::coding {

class Interleaver {
public:
    /// Identity permutation of the given size.
    explicit Interleaver(std::size_t size);

    /// Rectangular block interleaver: write row-major into rows x cols,
    /// read column-major. rows*cols must equal size.
    [[nodiscard]] static Interleaver block(std::size_t rows, std::size_t cols);

    /// Seeded pseudo-random permutation.
    [[nodiscard]] static Interleaver random(std::size_t size, std::uint64_t seed);

    [[nodiscard]] std::size_t size() const noexcept { return forward_.size(); }

    /// out[i] = in[pi(i)].
    [[nodiscard]] Bits apply(std::span<const std::uint8_t> in) const;
    [[nodiscard]] Bits invert(std::span<const std::uint8_t> in) const;

    /// Permuted index (bounds-checked).
    [[nodiscard]] std::size_t map(std::size_t i) const { return forward_.at(i); }

private:
    explicit Interleaver(std::vector<std::size_t> forward);
    std::vector<std::size_t> forward_;
    std::vector<std::size_t> inverse_;
};

}  // namespace ccap::coding
