// Bit-sequence helpers shared by all coders.
//
// Bits travel through the library as std::vector<std::uint8_t> with values
// in {0,1} (simple, debuggable, and what the channel simulators consume);
// this header provides the conversions and integrity helpers around that
// representation.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ccap::coding {

using Bits = std::vector<std::uint8_t>;

/// Throws std::domain_error unless every element is 0 or 1.
void check_bits(std::span<const std::uint8_t> bits, const char* who = "bits");

/// Pack bits (MSB-first) into bytes; the tail is zero-padded.
[[nodiscard]] std::vector<std::uint8_t> pack_bytes(std::span<const std::uint8_t> bits);

/// Unpack `count` bits (MSB-first) from bytes.
[[nodiscard]] Bits unpack_bytes(std::span<const std::uint8_t> bytes, std::size_t count);

/// Lowest `width` bits of `value`, MSB-first.
[[nodiscard]] Bits bits_from_uint(std::uint64_t value, unsigned width);

/// Inverse of bits_from_uint; bits.size() must be <= 64.
[[nodiscard]] std::uint64_t uint_from_bits(std::span<const std::uint8_t> bits);

/// ASCII rendering, e.g. "0110"; for logs and tests.
[[nodiscard]] std::string to_string(std::span<const std::uint8_t> bits);

/// Parse "0101" (throws on other characters).
[[nodiscard]] Bits bits_from_string(const std::string& s);

/// Hamming distance; sizes must match.
[[nodiscard]] std::size_t hamming_distance(std::span<const std::uint8_t> a,
                                           std::span<const std::uint8_t> b);

/// Element-wise XOR; sizes must match.
[[nodiscard]] Bits xor_bits(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b);

/// Deterministic pseudo-random bit sequence from a seed (for watermarks).
[[nodiscard]] Bits random_bits(std::size_t count, std::uint64_t seed);

}  // namespace ccap::coding
