// BCJR (MAP) decoding of terminated convolutional codes.
//
// Produces per-information-bit posterior probabilities instead of a single
// hard path — the soft output needed when a convolutional code sits inside
// a larger iterative pipeline (e.g. as the outer code over the drift-HMM
// inner decoder in the coded-transmission experiments).
#pragma once

#include <vector>

#include "ccap/coding/convolutional.hpp"

namespace ccap::info {
class LatticeWorkspace;  // ccap/info/lattice_engine.hpp
}

namespace ccap::coding {

struct BcjrResult {
    /// P(info bit = 1 | received), one per information bit.
    std::vector<double> posterior_one;
    /// Hard decisions thresholded at 1/2.
    Bits info;
};

/// MAP decode from per-code-bit probabilities of being 1. `p_one.size()`
/// must equal steps * rate_denominator with steps >= K-1 (terminated).
/// The workspace overload runs the alpha/beta trellis in caller-owned flat
/// arenas (ccap/info/lattice_engine.hpp) — allocation-free when the
/// workspace is reused; the other overload leases a thread-local one.
[[nodiscard]] BcjrResult bcjr_decode(const ConvolutionalCode& code,
                                     std::span<const double> p_one);
[[nodiscard]] BcjrResult bcjr_decode(const ConvolutionalCode& code,
                                     std::span<const double> p_one,
                                     info::LatticeWorkspace& ws);

/// Convenience: hard-decision input with crossover probability p
/// (BSC observation model).
[[nodiscard]] BcjrResult bcjr_decode_bsc(const ConvolutionalCode& code,
                                         std::span<const std::uint8_t> received, double p);

}  // namespace ccap::coding
