// Varshamov-Tenengolts codes VT_a(n): the classic single-deletion /
// single-insertion correcting binary codes.
//
// VT_a(n) = { x in {0,1}^n : sum_i i * x_i == a (mod n+1) }  (positions
// 1-indexed). Levenshtein proved each VT code corrects any single deletion
// or single insertion; VT_0(n) is the largest such code known. These codes
// are the simplest concrete witness to the paper's Section 4.1 statement
// that reliable communication over synchronization-error channels is
// possible without feedback — they handle exactly one indel per block, so
// their usable rate collapses as blocks lengthen (shown in bench E5).
//
// The systematic encoder (Abdel-Ghaffar & Ferreira) places information bits
// at non-power-of-two positions and solves for the power-of-two parity bits
// via the binary representation of the checksum deficiency.
#pragma once

#include <cstdint>
#include <optional>

#include "ccap/coding/bitvec.hpp"

namespace ccap::coding {

enum class VtStatus : std::uint8_t {
    ok,                ///< decoded successfully
    detected_failure,  ///< length-n word failed the checksum (substitution?)
    bad_length,        ///< received length not in {n-1, n, n+1}
};

struct VtDecodeResult {
    VtStatus status = VtStatus::bad_length;
    Bits codeword;  ///< reconstructed length-n codeword (valid when status==ok)
    Bits info;      ///< extracted information bits (valid when status==ok)
};

class VtCode {
public:
    /// Code of length n (>= 2) with checksum residue a in [0, n].
    VtCode(unsigned n, unsigned a);

    [[nodiscard]] unsigned block_length() const noexcept { return n_; }
    [[nodiscard]] unsigned residue() const noexcept { return a_; }
    /// Information bits carried per block by the systematic encoder.
    [[nodiscard]] unsigned data_bits() const noexcept;
    [[nodiscard]] double rate() const noexcept {
        return static_cast<double>(data_bits()) / n_;
    }

    /// Checksum sum_i i*x_i mod (n+1); word must be n bits.
    [[nodiscard]] unsigned checksum(std::span<const std::uint8_t> word) const;
    [[nodiscard]] bool is_codeword(std::span<const std::uint8_t> word) const;

    /// Systematic encode of exactly data_bits() information bits.
    [[nodiscard]] Bits encode(std::span<const std::uint8_t> info) const;
    /// Extract the information bits of a codeword (no error correction).
    [[nodiscard]] Bits extract_info(std::span<const std::uint8_t> codeword) const;

    /// Decode a received word of length n-1 (one deletion, O(n) direct
    /// algorithm), n (checksum verify), or n+1 (one insertion).
    [[nodiscard]] VtDecodeResult decode(std::span<const std::uint8_t> received) const;

private:
    [[nodiscard]] Bits correct_deletion(std::span<const std::uint8_t> received) const;
    unsigned n_;
    unsigned a_;
};

}  // namespace ccap::coding
