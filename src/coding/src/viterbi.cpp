#include "ccap/coding/viterbi.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace ccap::coding {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Shared trellis sweep; branch_cost(step_output_bits, trellis_step) returns
/// the additive cost of emitting those n bits at that step.
template <typename CostFn>
ViterbiResult run_viterbi(const ConvolutionalCode& code, std::size_t steps, CostFn&& branch_cost) {
    const unsigned num_states = code.num_states();
    const unsigned k = code.constraint_length();
    if (steps + 1 < static_cast<std::size_t>(k))
        throw std::invalid_argument("viterbi: sequence shorter than the terminator");
    const std::size_t info_len = steps - (k - 1);

    std::vector<double> metric(num_states, kInf), next_metric(num_states, kInf);
    metric[0] = 0.0;
    // survivor[t][s] = input bit and predecessor state.
    struct Back {
        std::uint32_t prev = 0;
        std::uint8_t bit = 0;
    };
    std::vector<std::vector<Back>> survivor(steps, std::vector<Back>(num_states));

    for (std::size_t t = 0; t < steps; ++t) {
        std::fill(next_metric.begin(), next_metric.end(), kInf);
        const bool forced_zero = t >= info_len;  // terminator region
        for (std::uint32_t s = 0; s < num_states; ++s) {
            if (metric[s] == kInf) continue;
            for (std::uint8_t bit = 0; bit <= (forced_zero ? 0 : 1); ++bit) {
                const auto step = code.step(s, bit);
                const double m = metric[s] + branch_cost(step.output, t);
                if (m < next_metric[step.next_state]) {
                    next_metric[step.next_state] = m;
                    survivor[t][step.next_state] = {s, bit};
                }
            }
        }
        metric.swap(next_metric);
    }

    ViterbiResult res;
    std::uint32_t state = 0;  // terminated codes end in the zero state
    res.terminated_ok = metric[0] != kInf;
    if (!res.terminated_ok) {
        // Fall back to the best ending state (e.g. truncated input).
        double best = kInf;
        for (std::uint32_t s = 0; s < num_states; ++s)
            if (metric[s] < best) {
                best = metric[s];
                state = s;
            }
    }
    res.path_metric = metric[state];
    Bits all(steps);
    for (std::size_t t = steps; t-- > 0;) {
        const Back& b = survivor[t][state];
        all[t] = b.bit;
        state = b.prev;
    }
    res.info.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(info_len));
    return res;
}

}  // namespace

ViterbiResult viterbi_decode_hard(const ConvolutionalCode& code,
                                  std::span<const std::uint8_t> received) {
    check_bits(received, "viterbi_decode_hard");
    const unsigned n = code.rate_denominator();
    if (received.size() % n != 0)
        throw std::invalid_argument("viterbi_decode_hard: length not a multiple of rate");
    const std::size_t steps = received.size() / n;
    return run_viterbi(code, steps, [&](std::uint32_t out, std::size_t t) {
        double cost = 0.0;
        for (unsigned j = 0; j < n; ++j) {
            const std::uint8_t expect = (out >> (n - 1 - j)) & 1U;
            cost += (expect != received[t * n + j]) ? 1.0 : 0.0;
        }
        return cost;
    });
}

ViterbiResult viterbi_decode_soft(const ConvolutionalCode& code, std::span<const double> llrs) {
    const unsigned n = code.rate_denominator();
    if (llrs.size() % n != 0)
        throw std::invalid_argument("viterbi_decode_soft: length not a multiple of rate");
    const std::size_t steps = llrs.size() / n;
    return run_viterbi(code, steps, [&](std::uint32_t out, std::size_t t) {
        // Cost of a bit b given LLR L = log2(P0/P1): choose -log2 P(b), which
        // up to a per-step constant equals (b==1 ? L : 0) ... use the exact
        // softplus form for numerical sanity.
        double cost = 0.0;
        for (unsigned j = 0; j < n; ++j) {
            const std::uint8_t expect = (out >> (n - 1 - j)) & 1U;
            const double l = llrs[t * n + j];
            // -log2 P(expect): log2(1 + 2^{-|l|}) when the sign agrees,
            // log2(1 + 2^{|l|}) when it disagrees.
            const bool agrees = (expect == 0) == (l >= 0.0);
            const double a = std::abs(l);
            cost += agrees ? std::log2(1.0 + std::exp2(-a)) : (a + std::log2(1.0 + std::exp2(-a)));
        }
        return cost;
    });
}

}  // namespace ccap::coding
