#include "ccap/coding/gf.hpp"

#include <array>
#include <stdexcept>

namespace ccap::coding {
namespace {

// Primitive polynomials (without the leading x^m term is included as bits;
// value includes x^m bit) for GF(2^m), m = 1..12.
constexpr std::array<std::uint16_t, 13> kPrimitivePoly = {
    0,       // unused
    0b11,    // m=1:  x + 1
    0b111,   // m=2:  x^2 + x + 1
    0b1011,  // m=3:  x^3 + x + 1
    0b10011, // m=4:  x^4 + x + 1
    0b100101,        // m=5:  x^5 + x^2 + 1
    0b1000011,       // m=6:  x^6 + x + 1
    0b10001001,      // m=7:  x^7 + x^3 + 1
    0b100011101,     // m=8:  x^8 + x^4 + x^3 + x^2 + 1
    0b1000010001,    // m=9:  x^9 + x^4 + 1
    0b10000001001,   // m=10: x^10 + x^3 + 1
    0b100000000101,  // m=11: x^11 + x^2 + 1
    0b1000001010011, // m=12: x^12 + x^6 + x^4 + x + 1
};

}  // namespace

GaloisField::GaloisField(unsigned m) : m_(m), q_(1U << m) {
    if (m < 1 || m > 12) throw std::invalid_argument("GaloisField: m must be in [1,12]");
    exp_.resize(q_ - 1);
    log_.assign(q_, 0);
    const std::uint32_t poly = kPrimitivePoly[m];
    std::uint32_t x = 1;
    for (unsigned i = 0; i < q_ - 1; ++i) {
        exp_[i] = static_cast<std::uint16_t>(x);
        log_[x] = static_cast<std::uint16_t>(i);
        x <<= 1;
        if (x & q_) x ^= poly;
    }
}

void GaloisField::check_element(std::uint16_t a) const {
    if (a >= q_) throw std::out_of_range("GaloisField: element out of field");
}

std::uint16_t GaloisField::mul(std::uint16_t a, std::uint16_t b) const {
    check_element(a);
    check_element(b);
    if (a == 0 || b == 0) return 0;
    const unsigned s = log_[a] + log_[b];
    return exp_[s % (q_ - 1)];
}

std::uint16_t GaloisField::div(std::uint16_t a, std::uint16_t b) const {
    check_element(a);
    check_element(b);
    if (b == 0) throw std::domain_error("GaloisField::div: division by zero");
    if (a == 0) return 0;
    const unsigned s = log_[a] + (q_ - 1) - log_[b];
    return exp_[s % (q_ - 1)];
}

std::uint16_t GaloisField::inv(std::uint16_t a) const {
    check_element(a);
    if (a == 0) throw std::domain_error("GaloisField::inv: zero has no inverse");
    return exp_[(q_ - 1 - log_[a]) % (q_ - 1)];
}

std::uint16_t GaloisField::pow(std::uint16_t a, std::uint64_t e) const {
    check_element(a);
    if (a == 0) return e == 0 ? 1 : 0;
    const std::uint64_t le = (static_cast<std::uint64_t>(log_[a]) * (e % (q_ - 1))) % (q_ - 1);
    return exp_[le];
}

}  // namespace ccap::coding
