#include "ccap/coding/vt_code.hpp"

#include <bit>
#include <stdexcept>

namespace ccap::coding {
namespace {

[[nodiscard]] bool is_power_of_two(unsigned v) noexcept { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

VtCode::VtCode(unsigned n, unsigned a) : n_(n), a_(a) {
    if (n < 2) throw std::invalid_argument("VtCode: block length must be >= 2");
    if (a > n) throw std::invalid_argument("VtCode: residue must be in [0, n]");
}

unsigned VtCode::data_bits() const noexcept {
    // Parity positions are the powers of two <= n: floor(log2(n)) + 1 of them.
    const unsigned parity = std::bit_width(n_);
    return n_ - parity;
}

unsigned VtCode::checksum(std::span<const std::uint8_t> word) const {
    if (word.size() != n_) throw std::invalid_argument("VtCode::checksum: wrong length");
    check_bits(word, "VtCode::checksum");
    unsigned s = 0;
    for (unsigned i = 0; i < n_; ++i)
        if (word[i]) s = (s + i + 1) % (n_ + 1);
    return s;
}

bool VtCode::is_codeword(std::span<const std::uint8_t> word) const {
    return word.size() == n_ && checksum(word) == a_;
}

Bits VtCode::encode(std::span<const std::uint8_t> info) const {
    if (info.size() != data_bits())
        throw std::invalid_argument("VtCode::encode: expected exactly data_bits() info bits");
    check_bits(info, "VtCode::encode");
    Bits word(n_, 0);
    std::size_t next_info = 0;
    unsigned data_sum = 0;
    for (unsigned pos = 1; pos <= n_; ++pos) {
        if (is_power_of_two(pos)) continue;
        const std::uint8_t b = info[next_info++];
        word[pos - 1] = b;
        if (b) data_sum = (data_sum + pos) % (n_ + 1);
    }
    // Deficiency d in [0, n]; its binary representation uses only powers of
    // two <= n (since d <= n < 2*bit_width), so parity bits realize it.
    unsigned d = (a_ + (n_ + 1) - data_sum) % (n_ + 1);
    for (unsigned pos = 1; pos <= n_; pos <<= 1) {
        if (d & pos) word[pos - 1] = 1;
    }
    return word;
}

Bits VtCode::extract_info(std::span<const std::uint8_t> codeword) const {
    if (codeword.size() != n_)
        throw std::invalid_argument("VtCode::extract_info: wrong length");
    Bits info;
    info.reserve(data_bits());
    for (unsigned pos = 1; pos <= n_; ++pos)
        if (!is_power_of_two(pos)) info.push_back(codeword[pos - 1]);
    return info;
}

Bits VtCode::correct_deletion(std::span<const std::uint8_t> received) const {
    // Levenshtein's O(n) rule. Let w = weight(received) and
    // s = (a - checksum(received under original positions)) mod (n+1).
    //   s <= w : the deleted bit was 0; reinsert it with exactly s ones to
    //            its right.
    //   s >  w : the deleted bit was 1; reinsert it with exactly s - w - 1
    //            zeros to its left.
    unsigned partial = 0;
    unsigned w = 0;
    for (unsigned i = 0; i < received.size(); ++i)
        if (received[i]) {
            partial = (partial + i + 1) % (n_ + 1);
            ++w;
        }
    const unsigned s = (a_ + (n_ + 1) - partial) % (n_ + 1);

    Bits word(received.begin(), received.end());
    if (s <= w) {
        // Insert 0 with s ones to its right: walk from the end counting ones.
        unsigned ones_right = 0;
        std::size_t pos = word.size();
        while (pos > 0 && ones_right < s) {
            --pos;
            if (word[pos]) ++ones_right;
        }
        word.insert(word.begin() + static_cast<std::ptrdiff_t>(pos), 0);
    } else {
        // Insert 1 with (s - w - 1) zeros to its left.
        const unsigned zeros_left = s - w - 1;
        unsigned zeros = 0;
        std::size_t pos = 0;
        while (pos < word.size() && zeros < zeros_left) {
            if (!word[pos]) ++zeros;
            ++pos;
        }
        // Skip any further ones so exactly zeros_left zeros precede.
        while (pos < word.size() && word[pos] == 1) ++pos;
        word.insert(word.begin() + static_cast<std::ptrdiff_t>(pos), 1);
    }
    return word;
}

VtDecodeResult VtCode::decode(std::span<const std::uint8_t> received) const {
    check_bits(received, "VtCode::decode");
    VtDecodeResult res;
    if (received.size() == n_) {
        if (checksum(received) == a_) {
            res.status = VtStatus::ok;
            res.codeword.assign(received.begin(), received.end());
        } else {
            res.status = VtStatus::detected_failure;
            return res;
        }
    } else if (received.size() + 1 == n_) {
        res.codeword = correct_deletion(received);
        res.status = is_codeword(res.codeword) ? VtStatus::ok : VtStatus::detected_failure;
        if (res.status != VtStatus::ok) return res;
    } else if (received.size() == n_ + 1U) {
        // One insertion: deleting the right position restores the unique
        // codeword (Levenshtein). Try each distinct deletion.
        Bits candidate(received.begin(), received.end());
        res.status = VtStatus::detected_failure;
        for (std::size_t i = 0; i < received.size(); ++i) {
            if (i > 0 && received[i] == received[i - 1]) continue;  // same string
            Bits trial;
            trial.reserve(n_);
            for (std::size_t j = 0; j < received.size(); ++j)
                if (j != i) trial.push_back(received[j]);
            if (is_codeword(trial)) {
                res.codeword = std::move(trial);
                res.status = VtStatus::ok;
                break;
            }
        }
        if (res.status != VtStatus::ok) return res;
    } else {
        res.status = VtStatus::bad_length;
        return res;
    }
    res.info = extract_info(res.codeword);
    return res;
}

}  // namespace ccap::coding
