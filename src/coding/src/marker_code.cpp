#include "ccap/coding/marker_code.hpp"

#include <cmath>
#include <stdexcept>

#include "ccap/coding/viterbi.hpp"

namespace ccap::coding {

MarkerCode::MarkerCode(MarkerParams params) : params_(std::move(params)) {
    if (params_.marker.empty()) throw std::invalid_argument("MarkerCode: empty marker");
    check_bits(params_.marker, "MarkerCode marker");
    if (params_.period == 0) throw std::invalid_argument("MarkerCode: zero period");
    if (params_.data_prior_one <= 0.0 || params_.data_prior_one >= 1.0)
        throw std::invalid_argument("MarkerCode: data prior must be in (0,1)");
}

std::size_t MarkerCode::encoded_length(std::size_t data_len) const noexcept {
    // Even an empty payload carries one marker (mirrors encode()).
    const std::size_t groups =
        data_len == 0 ? 1 : (data_len + params_.period - 1) / params_.period;
    return data_len + groups * params_.marker.size();
}

double MarkerCode::rate(std::size_t data_len) const noexcept {
    const std::size_t total = encoded_length(data_len);
    return total == 0 ? 0.0 : static_cast<double>(data_len) / static_cast<double>(total);
}

Bits MarkerCode::encode(std::span<const std::uint8_t> data) const {
    check_bits(data, "MarkerCode::encode");
    Bits out;
    out.reserve(encoded_length(data.size()));
    std::size_t in_group = 0;
    for (std::uint8_t b : data) {
        out.push_back(b);
        if (++in_group == params_.period) {
            out.insert(out.end(), params_.marker.begin(), params_.marker.end());
            in_group = 0;
        }
    }
    if (in_group != 0 || data.empty())
        out.insert(out.end(), params_.marker.begin(), params_.marker.end());
    return out;
}

util::Matrix MarkerCode::build_priors(std::size_t data_len) const {
    const std::size_t total = encoded_length(data_len);
    util::Matrix priors(total, 2);
    std::size_t pos = 0, in_group = 0, emitted = 0;
    const auto put_marker = [&] {
        for (std::uint8_t mb : params_.marker) {
            priors(pos, 0) = mb ? 0.0 : 1.0;
            priors(pos, 1) = mb ? 1.0 : 0.0;
            ++pos;
        }
    };
    while (emitted < data_len) {
        priors(pos, 0) = 1.0 - params_.data_prior_one;
        priors(pos, 1) = params_.data_prior_one;
        ++pos;
        ++emitted;
        if (++in_group == params_.period) {
            put_marker();
            in_group = 0;
        }
    }
    if (in_group != 0 || data_len == 0) put_marker();
    return priors;
}

MarkerCode::SoftDecode MarkerCode::decode_soft(std::span<const std::uint8_t> received,
                                               std::size_t data_len,
                                               const info::DriftParams& channel) const {
    check_bits(received, "MarkerCode::decode_soft");
    const util::Matrix priors = build_priors(data_len);
    const info::DriftHmm hmm(channel);
    const util::Matrix post = hmm.posteriors(priors, received);

    SoftDecode out;
    out.posterior_one.reserve(data_len);
    out.hard.reserve(data_len);
    std::size_t pos = 0, in_group = 0;
    for (std::size_t emitted = 0; emitted < data_len; ++emitted) {
        const double p1 = post(pos, 1);
        out.posterior_one.push_back(p1);
        out.hard.push_back(static_cast<std::uint8_t>(p1 > 0.5));
        ++pos;
        if (++in_group == params_.period) {
            pos += params_.marker.size();
            in_group = 0;
        }
    }
    return out;
}

Bits MarkerCode::encode_with_outer(const ConvolutionalCode& outer,
                                   std::span<const std::uint8_t> info) const {
    return encode(outer.encode(info));
}

Bits MarkerCode::decode_with_outer(const ConvolutionalCode& outer,
                                   std::span<const std::uint8_t> received, std::size_t info_len,
                                   const info::DriftParams& channel) const {
    const std::size_t coded_len = (info_len + outer.constraint_length() - 1) *
                                  outer.rate_denominator();
    const SoftDecode soft = decode_soft(received, coded_len, channel);
    std::vector<double> llrs(coded_len);
    for (std::size_t i = 0; i < coded_len; ++i) {
        const double p1 = std::min(std::max(soft.posterior_one[i], 1e-12), 1.0 - 1e-12);
        llrs[i] = std::log2((1.0 - p1) / p1);
    }
    return viterbi_decode_soft(outer, llrs).info;
}

}  // namespace ccap::coding
