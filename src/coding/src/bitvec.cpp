#include "ccap/coding/bitvec.hpp"

#include <stdexcept>

#include "ccap/util/rng.hpp"

namespace ccap::coding {

void check_bits(std::span<const std::uint8_t> bits, const char* who) {
    for (std::uint8_t b : bits)
        if (b > 1) throw std::domain_error(std::string(who) + ": element is not a bit");
}

std::vector<std::uint8_t> pack_bytes(std::span<const std::uint8_t> bits) {
    check_bits(bits, "pack_bytes");
    std::vector<std::uint8_t> bytes((bits.size() + 7) / 8, 0);
    for (std::size_t i = 0; i < bits.size(); ++i)
        if (bits[i]) bytes[i / 8] |= static_cast<std::uint8_t>(0x80U >> (i % 8));
    return bytes;
}

Bits unpack_bytes(std::span<const std::uint8_t> bytes, std::size_t count) {
    if (count > bytes.size() * 8)
        throw std::invalid_argument("unpack_bytes: not enough bytes for requested bits");
    Bits bits(count);
    for (std::size_t i = 0; i < count; ++i)
        bits[i] = (bytes[i / 8] >> (7 - i % 8)) & 1U;
    return bits;
}

Bits bits_from_uint(std::uint64_t value, unsigned width) {
    if (width > 64) throw std::invalid_argument("bits_from_uint: width > 64");
    Bits bits(width);
    for (unsigned i = 0; i < width; ++i)
        bits[i] = static_cast<std::uint8_t>((value >> (width - 1 - i)) & 1U);
    return bits;
}

std::uint64_t uint_from_bits(std::span<const std::uint8_t> bits) {
    if (bits.size() > 64) throw std::invalid_argument("uint_from_bits: more than 64 bits");
    check_bits(bits, "uint_from_bits");
    std::uint64_t v = 0;
    for (std::uint8_t b : bits) v = (v << 1) | b;
    return v;
}

std::string to_string(std::span<const std::uint8_t> bits) {
    std::string s;
    s.reserve(bits.size());
    for (std::uint8_t b : bits) s.push_back(b ? '1' : '0');
    return s;
}

Bits bits_from_string(const std::string& s) {
    Bits bits;
    bits.reserve(s.size());
    for (char c : s) {
        if (c != '0' && c != '1') throw std::invalid_argument("bits_from_string: bad character");
        bits.push_back(static_cast<std::uint8_t>(c == '1'));
    }
    return bits;
}

std::size_t hamming_distance(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) {
    if (a.size() != b.size()) throw std::invalid_argument("hamming_distance: size mismatch");
    std::size_t d = 0;
    for (std::size_t i = 0; i < a.size(); ++i) d += (a[i] != b[i]) ? 1U : 0U;
    return d;
}

Bits xor_bits(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) {
    if (a.size() != b.size()) throw std::invalid_argument("xor_bits: size mismatch");
    check_bits(a, "xor_bits(a)");
    check_bits(b, "xor_bits(b)");
    Bits out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] ^ b[i];
    return out;
}

Bits random_bits(std::size_t count, std::uint64_t seed) {
    util::Rng rng(seed);
    Bits bits(count);
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next() & 1U);
    return bits;
}

}  // namespace ccap::coding
