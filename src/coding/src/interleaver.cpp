#include "ccap/coding/interleaver.hpp"

#include <numeric>
#include <stdexcept>

#include "ccap/util/rng.hpp"

namespace ccap::coding {

Interleaver::Interleaver(std::size_t size) {
    forward_.resize(size);
    std::iota(forward_.begin(), forward_.end(), std::size_t{0});
    inverse_ = forward_;
}

Interleaver::Interleaver(std::vector<std::size_t> forward) : forward_(std::move(forward)) {
    inverse_.assign(forward_.size(), 0);
    std::vector<bool> seen(forward_.size(), false);
    for (std::size_t i = 0; i < forward_.size(); ++i) {
        const std::size_t j = forward_[i];
        if (j >= forward_.size() || seen[j])
            throw std::invalid_argument("Interleaver: not a permutation");
        seen[j] = true;
        inverse_[j] = i;
    }
}

Interleaver Interleaver::block(std::size_t rows, std::size_t cols) {
    if (rows == 0 || cols == 0) throw std::invalid_argument("Interleaver::block: zero dimension");
    std::vector<std::size_t> fwd(rows * cols);
    std::size_t k = 0;
    for (std::size_t c = 0; c < cols; ++c)
        for (std::size_t r = 0; r < rows; ++r) fwd[k++] = r * cols + c;
    return Interleaver(std::move(fwd));
}

Interleaver Interleaver::random(std::size_t size, std::uint64_t seed) {
    std::vector<std::size_t> fwd(size);
    std::iota(fwd.begin(), fwd.end(), std::size_t{0});
    util::Rng rng(seed);
    rng.shuffle(fwd);
    return Interleaver(std::move(fwd));
}

Bits Interleaver::apply(std::span<const std::uint8_t> in) const {
    if (in.size() != forward_.size()) throw std::invalid_argument("Interleaver::apply: size mismatch");
    Bits out(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[forward_[i]];
    return out;
}

Bits Interleaver::invert(std::span<const std::uint8_t> in) const {
    if (in.size() != inverse_.size())
        throw std::invalid_argument("Interleaver::invert: size mismatch");
    Bits out(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[inverse_[i]];
    return out;
}

}  // namespace ccap::coding
