#include "ccap/coding/lt_code.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ccap/util/rng.hpp"

namespace ccap::coding {

void LtParams::validate() const {
    if (k < 2) throw std::invalid_argument("LtParams: k must be >= 2");
    if (!(c > 0.0)) throw std::domain_error("LtParams: c must be > 0");
    if (!(delta > 0.0) || delta >= 1.0)
        throw std::domain_error("LtParams: delta must be in (0,1)");
}

LtCode::LtCode(LtParams params) : params_(params) {
    params_.validate();
    const auto k = static_cast<double>(params_.k);
    // Ideal soliton rho(d), spike tau(d) at k/R, normalized (robust soliton).
    const double r = params_.c * std::log(k / params_.delta) * std::sqrt(k);
    const auto spike = static_cast<std::size_t>(
        std::clamp(std::round(k / std::max(1.0, r)), 1.0, k));
    degree_pmf_.assign(params_.k, 0.0);
    degree_pmf_[0] = 1.0 / k;  // rho(1)
    for (std::size_t d = 2; d <= params_.k; ++d)
        degree_pmf_[d - 1] = 1.0 / (static_cast<double>(d) * static_cast<double>(d - 1));
    // tau
    for (std::size_t d = 1; d < spike; ++d)
        degree_pmf_[d - 1] += r / (static_cast<double>(d) * k);
    if (spike >= 1 && spike <= params_.k)
        degree_pmf_[spike - 1] += r * std::log(r / params_.delta) / k;
    double norm = 0.0;
    for (double& p : degree_pmf_) {
        p = std::max(p, 0.0);
        norm += p;
    }
    for (double& p : degree_pmf_) p /= norm;
    degree_cdf_.resize(params_.k);
    double acc = 0.0;
    for (std::size_t d = 0; d < params_.k; ++d) {
        acc += degree_pmf_[d];
        degree_cdf_[d] = acc;
    }
    degree_cdf_.back() = 1.0;
}

std::vector<std::size_t> LtCode::neighbors(std::uint64_t index) const {
    // Deterministic per-index stream derived from the shared seed.
    util::Rng rng(params_.seed ^ (0x9E3779B97F4A7C15ULL * (index + 1)));
    const double u = rng.uniform();
    const auto it = std::lower_bound(degree_cdf_.begin(), degree_cdf_.end(), u);
    std::size_t degree = static_cast<std::size_t>(it - degree_cdf_.begin()) + 1;
    degree = std::min(degree, params_.k);
    // Sample `degree` distinct source indices (Floyd's algorithm flavour:
    // repeated draws with rejection — degree << k in expectation).
    std::vector<std::size_t> picked;
    picked.reserve(degree);
    while (picked.size() < degree) {
        const std::size_t cand = rng.uniform_below(params_.k);
        if (std::find(picked.begin(), picked.end(), cand) == picked.end())
            picked.push_back(cand);
    }
    std::sort(picked.begin(), picked.end());
    return picked;
}

std::uint32_t LtCode::encode_symbol(std::uint64_t index,
                                    std::span<const std::uint32_t> source) const {
    if (source.size() != params_.k)
        throw std::invalid_argument("LtCode::encode_symbol: source size != k");
    std::uint32_t v = 0;
    for (std::size_t i : neighbors(index)) v ^= source[i];
    return v;
}

LtDecoder::LtDecoder(const LtCode& code)
    : code_(&code), source_(code.k()), by_source_(code.k()) {}

void LtDecoder::resolve(std::size_t source_index, std::uint32_t value) {
    // BFS peeling: resolving one source symbol may release others.
    std::vector<std::pair<std::size_t, std::uint32_t>> queue = {{source_index, value}};
    while (!queue.empty()) {
        const auto [si, val] = queue.back();
        queue.pop_back();
        if (source_[si]) continue;
        source_[si] = val;
        ++decoded_count_;
        for (std::size_t pid : by_source_[si]) {
            Pending& p = pending_[pid];
            const auto it = std::find(p.remaining.begin(), p.remaining.end(), si);
            if (it == p.remaining.end()) continue;
            p.remaining.erase(it);
            p.value ^= val;
            if (p.remaining.size() == 1) {
                const std::size_t last = p.remaining.front();
                p.remaining.clear();
                if (!source_[last]) queue.emplace_back(last, p.value);
            }
        }
        by_source_[si].clear();
    }
}

bool LtDecoder::add_symbol(std::uint64_t index, std::uint32_t value) {
    if (complete()) return true;
    if (std::find(seen_indices_.begin(), seen_indices_.end(), index) != seen_indices_.end())
        return complete();
    seen_indices_.push_back(index);
    ++consumed_;

    Pending p;
    p.value = value;
    for (std::size_t si : code_->neighbors(index)) {
        if (source_[si])
            p.value ^= *source_[si];
        else
            p.remaining.push_back(si);
    }
    if (p.remaining.empty()) return complete();  // redundant symbol
    if (p.remaining.size() == 1) {
        resolve(p.remaining.front(), p.value);
        return complete();
    }
    const std::size_t pid = pending_.size();
    for (std::size_t si : p.remaining) by_source_[si].push_back(pid);
    pending_.push_back(std::move(p));
    return complete();
}

}  // namespace ccap::coding
