#include "ccap/coding/crc.hpp"

#include <array>

namespace ccap::coding {
namespace {

// Bit-at-a-time CRC engines. Messages here are at most a few thousand bits,
// so clarity wins over a byte-table implementation.
constexpr std::uint16_t kCcittPoly = 0x1021;
constexpr std::uint32_t kIeeePolyReflected = 0xEDB88320U;

}  // namespace

std::uint16_t crc16(std::span<const std::uint8_t> bits) {
    check_bits(bits, "crc16");
    std::uint16_t crc = 0xFFFF;
    for (std::uint8_t b : bits) {
        const bool top = (crc & 0x8000U) != 0;
        crc = static_cast<std::uint16_t>(crc << 1);
        if (top != (b != 0)) crc ^= kCcittPoly;
    }
    return crc;
}

std::uint32_t crc32(std::span<const std::uint8_t> bits) {
    check_bits(bits, "crc32");
    std::uint32_t crc = 0xFFFFFFFFU;
    for (std::uint8_t b : bits) {
        const std::uint32_t in = (crc ^ b) & 1U;
        crc >>= 1;
        if (in) crc ^= kIeeePolyReflected;
    }
    return crc ^ 0xFFFFFFFFU;
}

Bits append_crc16(std::span<const std::uint8_t> bits) {
    Bits out(bits.begin(), bits.end());
    const Bits tail = bits_from_uint(crc16(bits), 16);
    out.insert(out.end(), tail.begin(), tail.end());
    return out;
}

bool verify_crc16(std::span<const std::uint8_t> bits_with_crc) {
    if (bits_with_crc.size() < 16) return false;
    const auto body = bits_with_crc.first(bits_with_crc.size() - 16);
    const auto tail = bits_with_crc.last(16);
    return crc16(body) == uint_from_bits(tail);
}

}  // namespace ccap::coding
