#include "ccap/coding/ldpc_gf.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "ccap/util/rng.hpp"

namespace ccap::coding {

NbLdpcCode::NbLdpcCode(NbLdpcParams params) : params_(params), gf_(params.field_m) {
    if (params_.n < 2) throw std::invalid_argument("NbLdpcCode: n too small");
    if (params_.num_checks == 0 || params_.num_checks >= params_.n)
        throw std::invalid_argument("NbLdpcCode: need 0 < num_checks < n");
    if (params_.var_degree < 2 || params_.var_degree > params_.num_checks)
        throw std::invalid_argument("NbLdpcCode: var_degree out of range");
    // Retry construction until H has full rank (random regular graphs very
    // rarely fail, but encoding requires it).
    for (int attempt = 0; attempt < 32; ++attempt) {
        build_graph(params_.seed + static_cast<std::uint64_t>(attempt) * 0x9E37);
        gaussian_eliminate();
        if (rref_.size() == params_.num_checks) return;
    }
    throw std::runtime_error("NbLdpcCode: could not build a full-rank parity matrix");
}

void NbLdpcCode::build_graph(std::uint64_t seed) {
    util::Rng rng(seed);
    const std::size_t n = params_.n;
    const std::size_t m = params_.num_checks;
    const std::size_t num_edges = n * params_.var_degree;

    // Check sockets distributed as evenly as possible, then shuffled.
    std::vector<std::uint32_t> sockets(num_edges);
    for (std::size_t e = 0; e < num_edges; ++e)
        sockets[e] = static_cast<std::uint32_t>(e % m);
    rng.shuffle(sockets);

    // Resolve duplicate (var, chk) pairs by swapping sockets forward.
    const auto has_dup = [&](std::size_t v) {
        const std::size_t base = v * params_.var_degree;
        for (std::size_t i = 0; i < params_.var_degree; ++i)
            for (std::size_t j = i + 1; j < params_.var_degree; ++j)
                if (sockets[base + i] == sockets[base + j]) return true;
        return false;
    };
    for (std::size_t v = 0; v < n; ++v) {
        for (int tries = 0; tries < 512 && has_dup(v); ++tries) {
            const std::size_t base = v * params_.var_degree;
            const std::size_t i = base + rng.uniform_below(params_.var_degree);
            const std::size_t j = rng.uniform_below(num_edges);
            std::swap(sockets[i], sockets[j]);
        }
    }

    edges_.clear();
    edges_.reserve(num_edges);
    var_edges_.assign(n, {});
    chk_edges_.assign(m, {});
    for (std::size_t v = 0; v < n; ++v) {
        for (unsigned d = 0; d < params_.var_degree; ++d) {
            Edge e;
            e.var = static_cast<std::uint32_t>(v);
            e.chk = sockets[v * params_.var_degree + d];
            e.coeff = static_cast<std::uint16_t>(1 + rng.uniform_below(gf_.size() - 1));
            const auto id = static_cast<std::uint32_t>(edges_.size());
            var_edges_[v].push_back(id);
            chk_edges_[e.chk].push_back(id);
            edges_.push_back(e);
        }
    }
}

void NbLdpcCode::gaussian_eliminate() {
    const std::size_t n = params_.n;
    const std::size_t m = params_.num_checks;
    // Dense H from the edge list (duplicate edges would have been resolved;
    // if any remain their coefficients add in GF).
    std::vector<std::vector<std::uint16_t>> h(m, std::vector<std::uint16_t>(n, 0));
    for (const Edge& e : edges_) h[e.chk][e.var] = gf_.add(h[e.chk][e.var], e.coeff);

    pivot_cols_.clear();
    std::vector<bool> is_pivot(n, false);
    std::size_t rank = 0;
    for (std::size_t col = 0; col < n && rank < m; ++col) {
        std::size_t pivot_row = rank;
        while (pivot_row < m && h[pivot_row][col] == 0) ++pivot_row;
        if (pivot_row == m) continue;
        std::swap(h[rank], h[pivot_row]);
        // Scale pivot row to make the pivot 1.
        const std::uint16_t inv = gf_.inv(h[rank][col]);
        for (std::size_t c = 0; c < n; ++c) h[rank][c] = gf_.mul(h[rank][c], inv);
        // Eliminate the column everywhere else.
        for (std::size_t r = 0; r < m; ++r) {
            if (r == rank || h[r][col] == 0) continue;
            const std::uint16_t f = h[r][col];
            for (std::size_t c = 0; c < n; ++c)
                h[r][c] = gf_.sub(h[r][c], gf_.mul(f, h[rank][c]));
        }
        pivot_cols_.push_back(static_cast<std::uint32_t>(col));
        is_pivot[col] = true;
        ++rank;
    }
    rref_.assign(h.begin(), h.begin() + static_cast<std::ptrdiff_t>(rank));
    info_cols_.clear();
    for (std::size_t c = 0; c < n; ++c)
        if (!is_pivot[c]) info_cols_.push_back(static_cast<std::uint32_t>(c));
}

std::vector<std::uint16_t> NbLdpcCode::encode(std::span<const std::uint16_t> info) const {
    if (info.size() != info_cols_.size())
        throw std::invalid_argument("NbLdpcCode::encode: expected k() info symbols");
    for (std::uint16_t s : info)
        if (s >= gf_.size()) throw std::out_of_range("NbLdpcCode::encode: symbol out of field");
    std::vector<std::uint16_t> word(params_.n, 0);
    for (std::size_t i = 0; i < info.size(); ++i) word[info_cols_[i]] = info[i];
    // Each pivot row r reads: x[pivot_r] + sum_{c in info} h[r][c] x[c] = 0.
    for (std::size_t r = 0; r < rref_.size(); ++r) {
        std::uint16_t acc = 0;
        for (std::uint32_t c : info_cols_)
            acc = gf_.add(acc, gf_.mul(rref_[r][c], word[c]));
        word[pivot_cols_[r]] = acc;  // -acc == acc in characteristic 2
    }
    return word;
}

std::vector<std::uint16_t> NbLdpcCode::extract_info(
    std::span<const std::uint16_t> codeword) const {
    if (codeword.size() != params_.n)
        throw std::invalid_argument("NbLdpcCode::extract_info: wrong length");
    std::vector<std::uint16_t> info(info_cols_.size());
    for (std::size_t i = 0; i < info_cols_.size(); ++i) info[i] = codeword[info_cols_[i]];
    return info;
}

bool NbLdpcCode::check(std::span<const std::uint16_t> word) const {
    if (word.size() != params_.n) return false;
    for (std::uint16_t s : word)
        if (s >= gf_.size()) return false;
    std::vector<std::uint16_t> syndrome(params_.num_checks, 0);
    for (const Edge& e : edges_)
        syndrome[e.chk] = gf_.add(syndrome[e.chk], gf_.mul(e.coeff, word[e.var]));
    return std::all_of(syndrome.begin(), syndrome.end(), [](std::uint16_t s) { return s == 0; });
}

NbLdpcDecodeResult NbLdpcCode::decode(const util::Matrix& likelihoods,
                                      int max_iterations) const {
    const std::size_t n = params_.n;
    const unsigned q = gf_.size();
    if (likelihoods.rows() != n || likelihoods.cols() != q)
        throw std::invalid_argument("NbLdpcCode::decode: likelihood matrix must be n x q");

    constexpr double kFloor = 1e-12;
    // Row-normalized channel likelihoods.
    util::Matrix chan(n, q);
    for (std::size_t v = 0; v < n; ++v) {
        double norm = 0.0;
        for (unsigned s = 0; s < q; ++s) {
            const double val = std::max(likelihoods(v, s), 0.0) + kFloor;
            chan(v, s) = val;
            norm += val;
        }
        for (unsigned s = 0; s < q; ++s) chan(v, s) /= norm;
    }

    const std::size_t num_edges = edges_.size();
    // msg_vc[e], msg_cv[e]: length-q distributions per edge.
    std::vector<std::vector<double>> msg_vc(num_edges, std::vector<double>(q));
    std::vector<std::vector<double>> msg_cv(num_edges, std::vector<double>(q, 1.0 / q));
    for (std::size_t e = 0; e < num_edges; ++e)
        for (unsigned s = 0; s < q; ++s) msg_vc[e][s] = chan(edges_[e].var, s);

    NbLdpcDecodeResult res;
    res.symbols.assign(n, 0);

    std::vector<double> tilted(q), acc(q), tmp(q);
    for (int iter = 1; iter <= max_iterations; ++iter) {
        // ---- check-node update: XOR-convolution with prefix/suffix products.
        for (std::size_t c = 0; c < chk_edges_.size(); ++c) {
            const auto& eids = chk_edges_[c];
            const std::size_t deg = eids.size();
            if (deg == 0) continue;
            // Tilt each incoming message by its coefficient: T_e[h*s] = msg[s].
            std::vector<std::vector<double>> t(deg, std::vector<double>(q, 0.0));
            for (std::size_t i = 0; i < deg; ++i) {
                const Edge& e = edges_[eids[i]];
                for (unsigned s = 0; s < q; ++s)
                    t[i][gf_.mul(e.coeff, static_cast<std::uint16_t>(s))] = msg_vc[eids[i]][s];
            }
            // prefix[i] = conv(t_0..t_{i-1}); suffix[i] = conv(t_{i+1}..).
            std::vector<std::vector<double>> prefix(deg + 1, std::vector<double>(q, 0.0));
            std::vector<std::vector<double>> suffix(deg + 1, std::vector<double>(q, 0.0));
            prefix[0][0] = 1.0;
            suffix[deg][0] = 1.0;
            const auto xor_conv = [&](const std::vector<double>& f, const std::vector<double>& g,
                                      std::vector<double>& out) {
                std::fill(out.begin(), out.end(), 0.0);
                for (unsigned u = 0; u < q; ++u) {
                    if (f[u] == 0.0) continue;
                    for (unsigned v2 = 0; v2 < q; ++v2) out[u ^ v2] += f[u] * g[v2];
                }
            };
            for (std::size_t i = 0; i < deg; ++i) xor_conv(prefix[i], t[i], prefix[i + 1]);
            for (std::size_t i = deg; i-- > 0;) xor_conv(suffix[i + 1], t[i], suffix[i]);
            for (std::size_t i = 0; i < deg; ++i) {
                xor_conv(prefix[i], suffix[i + 1], tmp);  // distribution of sum w/o edge i
                // Constraint sum == 0  =>  t_i must equal the partial sum.
                const Edge& e = edges_[eids[i]];
                auto& out = msg_cv[eids[i]];
                double norm = 0.0;
                for (unsigned s = 0; s < q; ++s) {
                    out[s] = tmp[gf_.mul(e.coeff, static_cast<std::uint16_t>(s))] + kFloor;
                    norm += out[s];
                }
                for (unsigned s = 0; s < q; ++s) out[s] /= norm;
            }
        }

        // ---- variable-node update + posterior hard decision.
        for (std::size_t v = 0; v < n; ++v) {
            for (unsigned s = 0; s < q; ++s) acc[s] = chan(v, s);
            for (std::uint32_t eid : var_edges_[v])
                for (unsigned s = 0; s < q; ++s) acc[s] *= msg_cv[eid][s];
            // Posterior decision.
            unsigned best = 0;
            for (unsigned s = 1; s < q; ++s)
                if (acc[s] > acc[best]) best = s;
            res.symbols[v] = static_cast<std::uint16_t>(best);
            // Extrinsic messages.
            for (std::uint32_t eid : var_edges_[v]) {
                auto& out = msg_vc[eid];
                double norm = 0.0;
                for (unsigned s = 0; s < q; ++s) {
                    const double denom = std::max(msg_cv[eid][s], kFloor);
                    out[s] = acc[s] / denom + kFloor;
                    norm += out[s];
                }
                for (unsigned s = 0; s < q; ++s) out[s] /= norm;
            }
        }

        res.iterations = iter;
        if (check(res.symbols)) {
            res.converged = true;
            break;
        }
    }
    return res;
}

}  // namespace ccap::coding
