#include "ccap/coding/stack_decoder.hpp"

#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace ccap::coding {

void StackDecoderParams::validate() const {
    if (p_d < 0.0 || p_i < 0.0 || p_s < 0.0 || p_s > 1.0)
        throw std::domain_error("StackDecoderParams: negative probability");
    if (p_d + p_i >= 1.0)
        throw std::domain_error("StackDecoderParams: p_d + p_i must be < 1");
    if (max_insert_run < 1)
        throw std::domain_error("StackDecoderParams: max_insert_run must be >= 1");
    if (max_expansions == 0)
        throw std::domain_error("StackDecoderParams: zero expansion budget");
}

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Branch likelihoods: probabilities of producing exactly k received bits
/// from the `bits` coded in one trellis step, for k = 0..k_max.
/// Micro drift forward, identical generative model to info::DriftHmm.
class BranchModel {
public:
    BranchModel(const StackDecoderParams& p, unsigned bits_per_branch)
        : p_t_(1.0 - p.p_d - p.p_i),
          p_d_(p.p_d),
          p_s_(p.p_s),
          max_ins_(p.max_insert_run),
          n_(bits_per_branch),
          k_max_(bits_per_branch + static_cast<unsigned>(p.max_insert_run)) {
        half_pi_ = 0.5 * p.p_i;  // insertion emits a uniform bit
        ins_pow_.resize(static_cast<std::size_t>(max_ins_) + 1);
        ins_pow_[0] = 1.0;
        for (std::size_t g = 1; g < ins_pow_.size(); ++g)
            ins_pow_[g] = ins_pow_[g - 1] * half_pi_;
    }

    [[nodiscard]] unsigned k_max() const noexcept { return k_max_; }

    /// out[k] = P(rx_window[0..k) | branch bits). rx_window may be shorter
    /// than k_max (end of stream); entries beyond its length stay 0.
    void likelihoods(std::uint32_t branch_output, std::span<const std::uint8_t> rx_window,
                     std::vector<double>& out) const {
        out.assign(k_max_ + 1, 0.0);
        // forward[j] over consumed counts; process the n branch bits.
        std::vector<double> cur(k_max_ + 1, 0.0), next(k_max_ + 1, 0.0);
        cur[0] = 1.0;
        for (unsigned i = 0; i < n_; ++i) {
            const auto bit = static_cast<std::uint8_t>((branch_output >> (n_ - 1 - i)) & 1U);
            std::fill(next.begin(), next.end(), 0.0);
            for (unsigned j = 0; j <= k_max_; ++j) {
                const double mass = cur[j];
                if (mass == 0.0) continue;
                for (int g = 0; g <= max_ins_; ++g) {
                    const unsigned consumed_del = j + static_cast<unsigned>(g);
                    // deletion after g insertions
                    if (consumed_del <= k_max_ && consumed_del <= rx_window.size())
                        next[consumed_del] += mass * ins_pow_[static_cast<std::size_t>(g)] * p_d_;
                    // transmission after g insertions (consumes one more)
                    const unsigned consumed_tx = consumed_del + 1;
                    if (consumed_tx <= k_max_ && consumed_tx <= rx_window.size()) {
                        const std::uint8_t r = rx_window[consumed_tx - 1];
                        const double emit = r == bit ? 1.0 - p_s_ : p_s_;
                        next[consumed_tx] +=
                            mass * ins_pow_[static_cast<std::size_t>(g)] * p_t_ * emit;
                    }
                }
            }
            cur.swap(next);
        }
        out = cur;
    }

private:
    double p_t_, p_d_, p_s_, half_pi_;
    int max_ins_;
    unsigned n_;
    unsigned k_max_;
    std::vector<double> ins_pow_;
};

struct Node {
    double metric = 0.0;
    std::uint32_t id = 0;  // arena index
};
struct Worse {
    bool operator()(const Node& a, const Node& b) const noexcept { return a.metric < b.metric; }
};

struct Hypothesis {
    std::uint32_t parent = 0;
    std::uint32_t state = 0;
    std::uint32_t step = 0;
    std::uint32_t rx_pos = 0;
    std::uint8_t bit = 0;
};

[[nodiscard]] std::uint64_t key_of(std::uint32_t step, std::uint32_t state,
                                   std::uint32_t rx_pos) noexcept {
    return (static_cast<std::uint64_t>(step) << 40) ^
           (static_cast<std::uint64_t>(state) << 24) ^ rx_pos;
}

}  // namespace

StackDecodeResult stack_decode(const ConvolutionalCode& code,
                               std::span<const std::uint8_t> received, std::size_t info_len,
                               const StackDecoderParams& params) {
    params.validate();
    check_bits(received, "stack_decode");
    const unsigned n = code.rate_denominator();
    const unsigned k = code.constraint_length();
    const std::size_t steps = info_len + k - 1;
    const auto m = static_cast<std::uint32_t>(received.size());

    const BranchModel branch(params, n);
    // Massey/Fano metric: each consumed received bit contributes
    // log2 P(y|x) - log2 P(y) - R, i.e. a bias of (1 - R) per consumed bit
    // with R = 1/n the code rate. This makes the expected increment positive
    // on the correct path and firmly negative on wrong ones.
    const double kBias = 1.0 - 1.0 / static_cast<double>(n);
    const double log_one_minus_pi = std::log2(1.0 - params.p_i);
    const double log_trail_step = std::log2(0.5 * params.p_i);  // per trailing insertion

    std::vector<Hypothesis> arena;
    arena.reserve(4096);
    arena.push_back({});  // root: step 0, state 0, rx 0
    std::priority_queue<Node, std::vector<Node>, Worse> stack;
    stack.push({0.0, 0});
    std::unordered_map<std::uint64_t, double> best_metric;
    best_metric[key_of(0, 0, 0)] = 0.0;

    StackDecodeResult result;
    std::vector<double> like;
    while (!stack.empty() && result.expansions < params.max_expansions) {
        const Node node = stack.top();
        stack.pop();
        const Hypothesis hyp = arena[node.id];
        const auto it = best_metric.find(key_of(hyp.step, hyp.state, hyp.rx_pos));
        if (it != best_metric.end() && node.metric < it->second - 1e-12) continue;  // stale
        ++result.expansions;

        if (hyp.step == steps) {
            // Terminal nodes carry their *final* metric (trailing-insertion
            // tail included at push time), so the first one popped is the
            // best complete hypothesis currently known.
            result.success = true;
            result.metric = node.metric;
            // Trace back the input bits.
            Bits all(steps, 0);
            std::uint32_t cursor = node.id;
            for (std::size_t t = steps; t-- > 0;) {
                all[t] = arena[cursor].bit;
                cursor = arena[cursor].parent;
            }
            result.info.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(info_len));
            return result;
        }

        const bool forced_zero = hyp.step >= info_len;  // terminator region
        for (std::uint8_t bit = 0; bit <= (forced_zero ? 0 : 1); ++bit) {
            const auto step = code.step(hyp.state, bit);
            const std::size_t window_len =
                std::min<std::size_t>(branch.k_max(), m - hyp.rx_pos);
            branch.likelihoods(step.output, received.subspan(hyp.rx_pos, window_len), like);
            for (std::uint32_t consumed = 0; consumed < like.size(); ++consumed) {
                const double p = like[consumed];
                if (p <= 0.0) continue;
                double metric =
                    node.metric + std::log2(p) + kBias * static_cast<double>(consumed);
                const std::uint32_t rx_pos = hyp.rx_pos + consumed;
                if (hyp.step + 1 == steps) {
                    // Fold in the trailing-insertion tail so terminal nodes
                    // compete on their true final likelihood.
                    const std::uint32_t rest = m - rx_pos;
                    metric += log_one_minus_pi;
                    if (rest > 0)
                        metric += static_cast<double>(rest) * (log_trail_step + kBias);
                    if (!std::isfinite(metric)) continue;
                }
                const std::uint64_t key = key_of(hyp.step + 1, step.next_state, rx_pos);
                auto [slot, inserted] = best_metric.try_emplace(key, metric);
                if (!inserted && slot->second >= metric) continue;
                slot->second = metric;
                arena.push_back(
                    {node.id, step.next_state, hyp.step + 1, rx_pos, bit});
                stack.push({metric, static_cast<std::uint32_t>(arena.size() - 1)});
            }
        }
    }
    return result;  // budget exhausted
}

}  // namespace ccap::coding
