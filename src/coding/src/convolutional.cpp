#include "ccap/coding/convolutional.hpp"

#include <bit>
#include <stdexcept>

namespace ccap::coding {

ConvolutionalCode::ConvolutionalCode(std::vector<std::uint32_t> generators,
                                     unsigned constraint_length)
    : generators_(std::move(generators)), k_(constraint_length) {
    if (generators_.empty())
        throw std::invalid_argument("ConvolutionalCode: need at least one generator");
    if (k_ < 2 || k_ > 16)
        throw std::invalid_argument("ConvolutionalCode: constraint length must be in [2,16]");
    for (std::uint32_t g : generators_) {
        if (g == 0) throw std::invalid_argument("ConvolutionalCode: zero generator");
        if (g >= (1U << k_))
            throw std::invalid_argument("ConvolutionalCode: generator wider than constraint length");
    }
}

ConvolutionalCode::Step ConvolutionalCode::step(std::uint32_t state, std::uint8_t bit) const noexcept {
    // Shift register: bit enters as the most recent (LSB position 0 of the
    // register window); `state` holds the k-1 previous bits.
    const std::uint32_t window = (state << 1) | bit;  // k bits of history, newest in LSB
    std::uint32_t out = 0;
    for (std::uint32_t g : generators_)
        out = (out << 1) | static_cast<std::uint32_t>(std::popcount(window & g) & 1);
    const std::uint32_t next_state = window & ((1U << (k_ - 1)) - 1U);
    return {next_state, out};
}

Bits ConvolutionalCode::encode(std::span<const std::uint8_t> info) const {
    check_bits(info, "ConvolutionalCode::encode");
    const unsigned n = rate_denominator();
    Bits out;
    out.reserve((info.size() + k_ - 1) * n);
    std::uint32_t state = 0;
    const auto push = [&](std::uint8_t bit) {
        const Step s = step(state, bit);
        state = s.next_state;
        for (unsigned j = 0; j < n; ++j)
            out.push_back(static_cast<std::uint8_t>((s.output >> (n - 1 - j)) & 1U));
    };
    for (std::uint8_t b : info) push(b);
    for (unsigned i = 0; i < k_ - 1; ++i) push(0);  // terminate to state 0
    return out;
}

}  // namespace ccap::coding
