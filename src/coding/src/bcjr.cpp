#include "ccap/coding/bcjr.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ccap/info/lattice_engine.hpp"

namespace ccap::coding {

BcjrResult bcjr_decode(const ConvolutionalCode& code, std::span<const double> p_one) {
    info::ScopedWorkspace lease;
    return bcjr_decode(code, p_one, lease.get());
}

BcjrResult bcjr_decode(const ConvolutionalCode& code, std::span<const double> p_one,
                       info::LatticeWorkspace& ws) {
    const unsigned n = code.rate_denominator();
    const unsigned num_states = code.num_states();
    const unsigned k = code.constraint_length();
    if (p_one.size() % n != 0)
        throw std::invalid_argument("bcjr_decode: length not a multiple of rate");
    for (double p : p_one)
        if (p < 0.0 || p > 1.0) throw std::domain_error("bcjr_decode: probability outside [0,1]");
    const std::size_t steps = p_one.size() / n;
    if (steps + 1 < static_cast<std::size_t>(k))
        throw std::invalid_argument("bcjr_decode: sequence shorter than the terminator");
    const std::size_t info_len = steps - (k - 1);

    const auto branch_prob = [&](std::uint32_t out, std::size_t t) {
        double p = 1.0;
        for (unsigned j = 0; j < n; ++j) {
            const std::uint8_t bit = (out >> (n - 1 - j)) & 1U;
            const double p1 = p_one[t * n + j];
            p *= bit ? p1 : (1.0 - p1);
        }
        return p;
    };

    // Forward (alpha) and backward (beta) over flat row-major arenas,
    // normalized per step.
    const std::span<double> alpha = ws.alpha((steps + 1) * num_states);
    const std::span<double> beta = ws.beta((steps + 1) * num_states);
    std::fill(alpha.begin(), alpha.begin() + num_states, 0.0);
    alpha[0] = 1.0;
    for (std::size_t t = 0; t < steps; ++t) {
        const bool forced_zero = t >= info_len;
        const double* cur = alpha.data() + t * num_states;
        double* next = alpha.data() + (t + 1) * num_states;
        std::fill(next, next + num_states, 0.0);
        double norm = 0.0;
        for (std::uint32_t s = 0; s < num_states; ++s) {
            const double a = cur[s];
            if (a == 0.0) continue;
            for (std::uint8_t bit = 0; bit <= (forced_zero ? 0 : 1); ++bit) {
                const auto step = code.step(s, bit);
                const double v = a * branch_prob(step.output, t) * 0.5;
                next[step.next_state] += v;
                norm += v;
            }
        }
        if (norm > 0.0)
            for (std::uint32_t s = 0; s < num_states; ++s) next[s] /= norm;
    }
    std::fill(beta.begin() + steps * num_states, beta.begin() + (steps + 1) * num_states, 0.0);
    beta[steps * num_states] = 1.0;  // terminated: must end in state 0
    for (std::size_t t = steps; t-- > 0;) {
        const bool forced_zero = t >= info_len;
        double* cur = beta.data() + t * num_states;
        const double* next = beta.data() + (t + 1) * num_states;
        double norm = 0.0;
        for (std::uint32_t s = 0; s < num_states; ++s) {
            double acc = 0.0;
            for (std::uint8_t bit = 0; bit <= (forced_zero ? 0 : 1); ++bit) {
                const auto step = code.step(s, bit);
                acc += branch_prob(step.output, t) * 0.5 * next[step.next_state];
            }
            cur[s] = acc;
            norm += acc;
        }
        if (norm > 0.0)
            for (std::uint32_t s = 0; s < num_states; ++s) cur[s] /= norm;
    }

    BcjrResult res;
    res.posterior_one.resize(info_len);
    res.info.resize(info_len);
    for (std::size_t t = 0; t < info_len; ++t) {
        const double* arow = alpha.data() + t * num_states;
        const double* brow = beta.data() + (t + 1) * num_states;
        double w0 = 0.0, w1 = 0.0;
        for (std::uint32_t s = 0; s < num_states; ++s) {
            const double a = arow[s];
            if (a == 0.0) continue;
            for (std::uint8_t bit = 0; bit <= 1; ++bit) {
                const auto step = code.step(s, bit);
                const double v = a * branch_prob(step.output, t) * brow[step.next_state];
                (bit ? w1 : w0) += v;
            }
        }
        const double total = w0 + w1;
        const double p1 = total > 0.0 ? w1 / total : 0.5;
        res.posterior_one[t] = p1;
        res.info[t] = static_cast<std::uint8_t>(p1 > 0.5);
    }
    return res;
}

BcjrResult bcjr_decode_bsc(const ConvolutionalCode& code, std::span<const std::uint8_t> received,
                           double p) {
    check_bits(received, "bcjr_decode_bsc");
    if (p < 0.0 || p > 1.0) throw std::domain_error("bcjr_decode_bsc: p outside [0,1]");
    std::vector<double> p_one(received.size());
    for (std::size_t i = 0; i < received.size(); ++i)
        p_one[i] = received[i] ? 1.0 - p : p;
    return bcjr_decode(code, p_one);
}

}  // namespace ccap::coding
