#include "ccap/coding/watermark.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "ccap/info/lattice_engine.hpp"

namespace ccap::coding {

std::vector<std::vector<std::uint8_t>> sparse_codebook(unsigned q, unsigned chunk_bits) {
    if (chunk_bits == 0 || chunk_bits > 20)
        throw std::invalid_argument("sparse_codebook: chunk_bits out of range");
    if (q == 0 || q > (1U << chunk_bits))
        throw std::invalid_argument("sparse_codebook: q exceeds 2^chunk_bits");
    std::vector<std::uint32_t> all(1U << chunk_bits);
    for (std::uint32_t v = 0; v < all.size(); ++v) all[v] = v;
    std::stable_sort(all.begin(), all.end(), [](std::uint32_t a, std::uint32_t b) {
        const int wa = std::popcount(a), wb = std::popcount(b);
        return wa != wb ? wa < wb : a < b;
    });
    std::vector<std::vector<std::uint8_t>> book(q);
    for (unsigned i = 0; i < q; ++i) {
        book[i].resize(chunk_bits);
        for (unsigned j = 0; j < chunk_bits; ++j)
            book[i][j] = static_cast<std::uint8_t>((all[i] >> (chunk_bits - 1 - j)) & 1U);
    }
    return book;
}

WatermarkCode::WatermarkCode(WatermarkParams params)
    : params_(params),
      ldpc_({params.bits_per_symbol, params.num_symbols, params.num_checks,
             params.ldpc_var_degree, params.ldpc_seed}) {
    if (params_.chunk_bits < params_.bits_per_symbol)
        throw std::invalid_argument("WatermarkCode: chunk_bits must be >= bits_per_symbol");
    const unsigned q = 1U << params_.bits_per_symbol;
    codebook_ = sparse_codebook(q, params_.chunk_bits);
    watermark_ = random_bits(channel_bits(), params_.watermark_seed);
    std::size_t ones = 0;
    for (const auto& chunk : codebook_)
        for (std::uint8_t b : chunk) ones += b;
    density_ = static_cast<double>(ones) /
               static_cast<double>(codebook_.size() * params_.chunk_bits);
}

Bits WatermarkCode::encode(std::span<const std::uint8_t> info) const {
    check_bits(info, "WatermarkCode::encode");
    if (info.size() != info_bits())
        throw std::invalid_argument("WatermarkCode::encode: expected info_bits() bits");
    // Pack info bits into GF(q) symbols.
    std::vector<std::uint16_t> symbols(ldpc_.k());
    for (std::size_t s = 0; s < symbols.size(); ++s) {
        std::uint16_t v = 0;
        for (unsigned b = 0; b < params_.bits_per_symbol; ++b)
            v = static_cast<std::uint16_t>((v << 1) | info[s * params_.bits_per_symbol + b]);
        symbols[s] = v;
    }
    const std::vector<std::uint16_t> codeword = ldpc_.encode(symbols);
    // Sparsify and add the watermark.
    Bits tx(channel_bits());
    for (std::size_t t = 0; t < codeword.size(); ++t) {
        const auto& chunk = codebook_[codeword[t]];
        for (unsigned j = 0; j < params_.chunk_bits; ++j) {
            const std::size_t pos = t * params_.chunk_bits + j;
            tx[pos] = chunk[j] ^ watermark_[pos];
        }
    }
    return tx;
}

WatermarkCode::DecodeResult WatermarkCode::decode(std::span<const std::uint8_t> received,
                                                  const info::DriftParams& channel,
                                                  int ldpc_iterations) const {
    info::ScopedWorkspace lease;
    return decode(received, channel, ldpc_iterations, lease.get());
}

WatermarkCode::DecodeResult WatermarkCode::decode(std::span<const std::uint8_t> received,
                                                  const info::DriftParams& channel,
                                                  int ldpc_iterations,
                                                  info::LatticeWorkspace& ws) const {
    check_bits(received, "WatermarkCode::decode");
    const std::size_t n = channel_bits();
    const unsigned q = 1U << params_.bits_per_symbol;

    // Per-transmitted-bit priors: the sparse bit is 1 with prob density, so
    // tx differs from the watermark bit with prob density.
    util::Matrix priors(n, 2);
    for (std::size_t i = 0; i < n; ++i) {
        const double p_match = 1.0 - density_;
        priors(i, watermark_[i]) = p_match;
        priors(i, 1 - watermark_[i]) = 1.0 - p_match;
    }

    // Candidates per segment: codebook entries XORed with the watermark.
    std::vector<std::vector<std::uint8_t>> seg_candidates(q,
                                                          std::vector<std::uint8_t>(
                                                              params_.chunk_bits));
    const info::DriftHmm hmm(channel);
    const auto provider =
        [&](std::size_t t) -> std::span<const std::vector<std::uint8_t>> {
        for (unsigned c = 0; c < q; ++c)
            for (unsigned j = 0; j < params_.chunk_bits; ++j)
                seg_candidates[c][j] =
                    codebook_[c][j] ^ watermark_[t * params_.chunk_bits + j];
        return seg_candidates;
    };
    // segment_likelihoods advances all q candidate substitutions of a segment
    // in lockstep through the batched SoA lattice, so one decode pass costs a
    // single batched sweep per segment rather than q scalar sweeps.
    const util::Matrix likelihoods =
        hmm.segment_likelihoods(priors, received, params_.chunk_bits, q, provider, ws);

    const NbLdpcDecodeResult ldpc_res = ldpc_.decode(likelihoods, ldpc_iterations);

    DecodeResult out;
    out.ldpc_converged = ldpc_res.converged;
    out.ldpc_iterations = ldpc_res.iterations;
    const std::vector<std::uint16_t> info_syms = ldpc_.extract_info(ldpc_res.symbols);
    out.info.reserve(info_bits());
    for (std::uint16_t v : info_syms)
        for (unsigned b = 0; b < params_.bits_per_symbol; ++b)
            out.info.push_back(
                static_cast<std::uint8_t>((v >> (params_.bits_per_symbol - 1 - b)) & 1U));
    return out;
}

}  // namespace ccap::coding
