// Dependency-free thread pool with deterministic fork-join helpers.
//
// The Monte-Carlo estimators and parameter sweeps are embarrassingly
// parallel, but the repo's contract is bit-reproducibility: the same seed
// must give the same answer no matter how many threads run. The pool
// therefore never owns randomness or reduction order — callers index work
// by a stable integer, workers race only over *which* index they grab
// next, and results are written (and later combined) strictly by index.
//
// Concurrency model:
//   * ThreadPool owns N workers draining one FIFO task queue.
//   * parallel_for(pool, n, body) runs body(0..n-1); the calling thread
//     participates, so a pool of size 0 still makes progress and a
//     max_threads of 1 is exactly serial inline execution.
//   * A caller waiting for its own chunk helps drain the pool queue
//     (ThreadPool::try_run_one), which makes nested parallel_for calls
//     issued from inside pool tasks deadlock-free.
//   * The first exception (by lowest index) thrown from a body is
//     rethrown on the caller, after the whole index range was visited —
//     deterministic error reporting under any interleaving.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace ccap::util {

class ThreadPool {
public:
    /// Spawn `num_threads` workers; 0 means std::thread::hardware_concurrency
    /// (itself falling back to 1 when the platform reports 0).
    explicit ThreadPool(unsigned num_threads = 0);

    /// Runs every task already submitted, then joins the workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Number of worker threads (excluding callers that help via
    /// parallel_for / try_run_one).
    [[nodiscard]] unsigned size() const noexcept {
        return static_cast<unsigned>(workers_.size());
    }

    /// Enqueue a fire-and-forget task. Tasks must not let exceptions
    /// escape (parallel_for's bodies are wrapped; raw submitters are on
    /// their own — an escaping exception terminates the process).
    /// Throws std::runtime_error if the pool is shutting down.
    void submit(std::function<void()> task);

    /// Pop and run one queued task on the calling thread. Returns false
    /// when the queue is empty. This is the help-while-waiting hook that
    /// makes nested fork-joins safe.
    bool try_run_one();

    /// Process-wide shared pool, sized to hardware concurrency on first
    /// use. Intended for library hot paths (MC estimators, sweeps) so
    /// they compose without oversubscribing.
    [[nodiscard]] static ThreadPool& shared();

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

/// Run body(i) for every i in [0, n), using the calling thread plus up to
/// max_threads-1 pool workers (max_threads = 0 means pool.size() + 1).
/// Blocks until the whole range is done. Rethrows the lowest-index
/// exception thrown by any body. Safe to call from inside pool tasks.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body,
                  unsigned max_threads = 0);

/// Deterministic map-reduce: computes map(i) for every i in [0, n) in
/// parallel, then folds the results *in index order* on the calling
/// thread: acc = combine(acc, map(0)), combine(acc, map(1)), ... The
/// result is therefore independent of thread count even for
/// non-associative combines (floating-point merges included).
template <typename T, typename MapFn, typename CombineFn>
[[nodiscard]] T parallel_reduce(ThreadPool& pool, std::size_t n, T init, MapFn&& map,
                                CombineFn&& combine, unsigned max_threads = 0) {
    std::vector<std::optional<T>> partial(n);
    parallel_for(
        pool, n, [&](std::size_t i) { partial[i].emplace(map(i)); }, max_threads);
    T acc = std::move(init);
    for (auto& p : partial) acc = combine(std::move(acc), std::move(*p));
    return acc;
}

}  // namespace ccap::util
