// Streaming statistics used by the Monte-Carlo experiments: Welford running
// moments, normal-approximation confidence intervals, and a fixed-bin
// histogram for distribution sanity checks in tests and benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ccap::util {

/// Numerically stable running mean/variance (Welford's algorithm).
class RunningStats {
public:
    void add(double x) noexcept;
    void merge(const RunningStats& other) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
    /// Unbiased sample variance; 0 when fewer than two samples.
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    /// Standard error of the mean.
    [[nodiscard]] double sem() const noexcept;
    [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
    [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

    /// Half-width of the two-sided normal-approximation CI at the given
    /// z value (default 1.96 ~ 95%).
    [[nodiscard]] double ci_halfwidth(double z = 1.96) const noexcept;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Fold-order-deterministic compensated mean/SEM accumulator — the shared
/// fold of all Monte-Carlo estimators (deletion_bounds.hpp).
///
/// The adaptive-precision MC driver stops on the standard error of the
/// mean, so the SEM must stay trustworthy in the adversarial regime of a
/// tiny spread riding on a large mean (e.g. rate samples 1e9 +- 1e-6): a
/// naive sum-of-squares variance cancels catastrophically there, and plain
/// Welford loses the low bits of the updates. This accumulator instead
/// keeps Kahan-compensated sums of (x - K) and (x - K)^2 with the shift K
/// pinned to the first sample, so both sums live at the noise scale and
/// the subtraction in the variance is benign.
///
/// Determinism: add() is a pure fold — the same samples in the same order
/// produce bit-identical state on every run, thread count and machine
/// (no FMA contraction, no reassociation; the compensation arithmetic is
/// fixed IEEE-754 sequence). The MC estimators rely on this to make the
/// adaptive stopping time a pure function of the root seed.
class CompensatedStats {
public:
    void add(double x) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept;
    /// Unbiased sample variance; 0 when fewer than two samples (never
    /// negative: the compensated residual is clamped).
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    /// Standard error of the mean; 0 when fewer than two samples.
    [[nodiscard]] double sem() const noexcept;

private:
    std::size_t n_ = 0;
    double shift_ = 0.0;               ///< K = first sample
    double sum_ = 0.0, sum_c_ = 0.0;   ///< Kahan sum of (x - K)
    double sq_ = 0.0, sq_c_ = 0.0;     ///< Kahan sum of (x - K)^2
};

/// Fixed-range equal-width histogram.
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x) noexcept;
    [[nodiscard]] std::size_t bin_count(std::size_t bin) const;
    [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
    [[nodiscard]] std::size_t total() const noexcept { return total_; }
    [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
    [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
    [[nodiscard]] double bin_low(std::size_t bin) const;
    [[nodiscard]] double bin_high(std::size_t bin) const;

private:
    double lo_, hi_, width_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0, underflow_ = 0, overflow_ = 0;
};

/// Mean of a sample span (0 for empty).
[[nodiscard]] double mean_of(std::span<const double> xs) noexcept;

/// Percentile (0..100) by linear interpolation on a copy; empty span -> 0.
[[nodiscard]] double percentile_of(std::span<const double> xs, double pct);

}  // namespace ccap::util
