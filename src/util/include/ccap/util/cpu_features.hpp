// Runtime CPU-feature detection and SIMD-path selection.
//
// The batched lattice kernels (info/lattice_simd.hpp) ship one translation
// unit per instruction set — scalar, NEON, AVX2, AVX-512 — and pick one at
// startup instead of relying on autovectorization of the lane loops. This
// header is the single source of truth for that choice:
//
//   * cpu_supports(path)        — does the hardware execute this ISA?
//   * simd_path_available(path) — hardware support AND a kernel TU was
//     compiled for it (the build injects CCAP_HAVE_KERNELS_* so util and
//     info can never disagree about what exists).
//   * active_simd_path()        — the path the kernels actually run.
//     Resolved once: the best available path, unless the CCAP_SIMD
//     environment variable (scalar|neon|avx2|avx512) or force_simd_path()
//     overrides it. Requests the machine cannot honour clamp down to the
//     best available path at or below the request, so CCAP_SIMD=avx512 on
//     an AVX2-only box degrades to avx2, and CCAP_SIMD=neon on x86
//     degrades to scalar — the override can force *less*, never more.
//
// Every vector path is elementwise bit-identical to the scalar path (the
// kernels use no FMA contraction and no cross-lane reductions), so the
// override exists for testing and benchmarking, not for correctness.
#pragma once

#include <cstddef>
#include <string>

namespace ccap::util {

/// Instruction sets the lane kernels are specialised for, ordered weakest
/// to widest (the order clamping walks down).
enum class SimdPath : int { scalar = 0, neon = 1, avx2 = 2, avx512 = 3 };

/// "scalar", "neon", "avx2" or "avx512".
[[nodiscard]] const char* simd_path_name(SimdPath path) noexcept;

/// Parse a path name (as accepted by CCAP_SIMD / --simd). Returns false on
/// anything else; `out` is untouched then.
[[nodiscard]] bool parse_simd_path(const std::string& text, SimdPath& out) noexcept;

/// Lane width of a path in doubles: 1 / 2 / 4 / 8.
[[nodiscard]] std::size_t simd_vector_doubles(SimdPath path) noexcept;

/// Hardware support for a path (scalar is always true). Detected once via
/// CPUID / the target architecture, never changes.
[[nodiscard]] bool cpu_supports(SimdPath path) noexcept;

/// Hardware support AND a kernel translation unit compiled for the path.
[[nodiscard]] bool simd_path_available(SimdPath path) noexcept;

/// Widest available path on this machine/build.
[[nodiscard]] SimdPath best_simd_path() noexcept;

/// Human-readable summary of the detected features, stamped into BENCH_JSON
/// records: e.g. "avx512f+avx2", "avx2", "neon", "baseline".
[[nodiscard]] std::string cpu_feature_string();

/// The path the dispatched kernels run. First call resolves it: CCAP_SIMD
/// if set (clamped to availability, unknown values are ignored with a
/// one-line stderr note), otherwise best_simd_path(). Stable afterwards
/// unless force_simd_path() intervenes.
[[nodiscard]] SimdPath active_simd_path() noexcept;

/// Test/CLI override of the active path; clamps to the best available path
/// at or below the request and returns what was actually applied. Not
/// thread-safe against concurrent lattice sweeps — switch paths only
/// between batched calls (tests and CLI startup do).
SimdPath force_simd_path(SimdPath path) noexcept;

}  // namespace ccap::util
