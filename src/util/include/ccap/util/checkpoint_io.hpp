// Versioned key-value checkpoint files for long-lived modes.
//
// The online capacity tracker (estimate/capacity_tracker.hpp) runs for
// hours and must survive restarts: its state is periodically flushed to a
// small plain-text checkpoint and read back on --resume. The format follows
// the trace-file idiom (estimate/trace_io.hpp): a framing header
//     # ccap-track v1 fields=N
// followed by exactly N "key value" lines. The declared field count makes a
// torn write detectable (CheckpointError::truncated), the version makes a
// format bump explicit (version_mismatch), and anything else that is not a
// well-formed field line is malformed — a corrupt checkpoint always fails
// loudly with a typed error, never crashes or silently restarts a tracker
// from a half-written state.
//
// Doubles are serialized as C99 hex-floats ("%a"), so every value — and
// therefore a resumed tracker's entire output stream — round-trips bit for
// bit. Readers tolerate trailing lines past the declared count (forward
// compatibility: a newer writer may append fields).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace ccap::util {

/// What went wrong reading a checkpoint; carried by CheckpointIoError so
/// callers (e.g. `ccap track --resume`) can map failures to distinct exit
/// messages.
enum class CheckpointError : std::uint8_t {
    unreadable,        ///< file missing or stream unreadable
    malformed,         ///< bad header, bad field line, duplicate or missing key
    truncated,         ///< fewer field lines than the header declared
    version_mismatch,  ///< a ccap-track header of another version
};

/// "unreadable" / "malformed" / "truncated" / "version mismatch".
[[nodiscard]] const char* checkpoint_error_name(CheckpointError kind) noexcept;

class CheckpointIoError : public std::runtime_error {
public:
    CheckpointIoError(CheckpointError kind, const std::string& what)
        : std::runtime_error(what), kind_(kind) {}
    [[nodiscard]] CheckpointError kind() const noexcept { return kind_; }

private:
    CheckpointError kind_;
};

/// An ordered set of named values with typed accessors. Writing and
/// re-reading a checkpoint reproduces every value bit for bit (doubles are
/// hex-float encoded). Keys must be non-empty and space-free; values may
/// contain spaces (the value is the rest of the line).
class Checkpoint {
public:
    static constexpr int kVersion = 1;
    static constexpr const char* kMagic = "ccap-track";

    /// Setters append; re-setting an existing key is a logic error upstream
    /// and throws std::invalid_argument (checkpoints are write-once maps).
    void set_text(const std::string& key, const std::string& value);
    void set_u64(const std::string& key, std::uint64_t value);
    /// Hex-float encoding: bit-exact round trip for every finite double,
    /// +-infinity and -0.0. NaN is rejected (std::invalid_argument) — the
    /// tracker's no-NaN contract extends to its checkpoints.
    void set_double(const std::string& key, double value);

    [[nodiscard]] bool has(const std::string& key) const noexcept;
    /// Typed getters throw CheckpointIoError(malformed) when the key is
    /// missing or its value does not parse as the requested type.
    [[nodiscard]] const std::string& text(const std::string& key) const;
    [[nodiscard]] std::uint64_t u64(const std::string& key) const;
    [[nodiscard]] double number(const std::string& key) const;

    [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

    /// Emit the "# ccap-track v1 fields=N" header and every field line.
    void write(std::ostream& out) const;
    /// Write to `path` via a same-directory temporary + rename, so a crash
    /// mid-flush leaves the previous checkpoint intact instead of a torn
    /// file. Throws std::runtime_error when the file can't be created.
    void write_file(const std::string& path) const;

    /// Parse a checkpoint. Throws CheckpointIoError (malformed, truncated,
    /// version_mismatch).
    [[nodiscard]] static Checkpoint read(std::istream& in);
    /// Parse a checkpoint file. Throws CheckpointIoError (additionally
    /// unreadable when the file is missing).
    [[nodiscard]] static Checkpoint read_file(const std::string& path);

private:
    [[nodiscard]] const std::string* find(const std::string& key) const noexcept;

    std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace ccap::util
