// Async-signal-safe shutdown flag for long-lived CLI modes.
//
// `ccap track` runs until its stream ends — possibly forever. A SIGINT or
// SIGTERM must not kill the process mid-window: the tracker finishes the
// window in flight, flushes a final report (and checkpoint), and exits 0.
// The only thing a signal handler can safely do toward that is set a flag;
// this module owns that flag.
#pragma once

namespace ccap::util {

/// Install SIGINT/SIGTERM handlers that set the process-wide shutdown
/// flag. Idempotent. The handlers do nothing but set the flag — the main
/// loop polls shutdown_requested() at its own safe points.
void install_shutdown_flag() noexcept;

/// True once a SIGINT/SIGTERM arrived (or request_shutdown() was called).
[[nodiscard]] bool shutdown_requested() noexcept;

/// Set the flag programmatically — same effect as a signal (tests, and
/// in-process embedders that want the graceful path).
void request_shutdown() noexcept;

/// Clear the flag (tests).
void reset_shutdown_flag() noexcept;

}  // namespace ccap::util
