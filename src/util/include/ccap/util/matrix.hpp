// Small dense real matrix used by the information-theoretic solvers.
//
// This is intentionally a minimal, cache-friendly row-major matrix rather
// than a full linear-algebra library: the capacity solvers only need
// element access, row views, matrix-vector products, stochasticity checks
// and power iteration for spectral radii.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace ccap::util {

class Matrix {
public:
    Matrix() = default;

    /// rows x cols matrix, zero-initialized (or filled with `fill`).
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    /// Construct from nested initializer list; all rows must be equal length.
    Matrix(std::initializer_list<std::initializer_list<double>> rows);

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
    [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

    [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
        return data_[r * cols_ + c];
    }
    [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
        return data_[r * cols_ + c];
    }

    /// Bounds-checked access; throws std::out_of_range.
    [[nodiscard]] double& at(std::size_t r, std::size_t c);
    [[nodiscard]] double at(std::size_t r, std::size_t c) const;

    [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
        return {data_.data() + r * cols_, cols_};
    }
    [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
        return {data_.data() + r * cols_, cols_};
    }

    [[nodiscard]] std::span<const double> flat() const noexcept { return data_; }

    /// y = A x. Requires x.size() == cols().
    [[nodiscard]] std::vector<double> mat_vec(std::span<const double> x) const;

    /// y = A^T x. Requires x.size() == rows().
    [[nodiscard]] std::vector<double> transpose_vec(std::span<const double> x) const;

    [[nodiscard]] Matrix transpose() const;
    [[nodiscard]] Matrix multiply(const Matrix& other) const;

    /// True iff every entry is >= -tol and every row sums to 1 within tol.
    [[nodiscard]] bool is_row_stochastic(double tol = 1e-9) const noexcept;

    /// Scale each row so it sums to 1. Rows summing to <= 0 throw.
    void normalize_rows();

    /// Largest-magnitude eigenvalue of a non-negative matrix, by power
    /// iteration (Perron-Frobenius). Requires a square matrix. Returns the
    /// eigenvalue; `iterations` bounds the work. Tolerance is on the
    /// eigenvalue estimate between successive iterations.
    [[nodiscard]] double spectral_radius(int iterations = 10000, double tol = 1e-12) const;

    [[nodiscard]] std::string to_string(int precision = 6) const;

    [[nodiscard]] bool operator==(const Matrix& other) const noexcept = default;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

}  // namespace ccap::util
