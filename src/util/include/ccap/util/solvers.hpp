// Generic 1-D numerical root/extremum helpers used by the capacity solvers:
// bisection for monotone roots (timing-channel characteristic equations) and
// golden-section maximization for unimodal capacity curves.
#pragma once

#include <cmath>
#include <functional>
#include <stdexcept>
#include <utility>

namespace ccap::util {

struct SolveResult {
    double x = 0.0;        ///< argmin/argmax or root location
    double value = 0.0;    ///< f(x)
    int iterations = 0;    ///< iterations consumed
    bool converged = false;
};

/// Find x in [lo, hi] with f(x) = 0 by bisection. Requires f(lo) and f(hi)
/// to have opposite signs (or one of them to be zero); throws otherwise.
template <typename F>
[[nodiscard]] SolveResult bisect(F&& f, double lo, double hi, double xtol = 1e-12,
                                 int max_iter = 200) {
    double flo = f(lo);
    double fhi = f(hi);
    if (flo == 0.0) return {lo, 0.0, 0, true};
    if (fhi == 0.0) return {hi, 0.0, 0, true};
    if ((flo > 0.0) == (fhi > 0.0))
        throw std::invalid_argument("bisect: f(lo) and f(hi) have the same sign");
    SolveResult res;
    for (int it = 0; it < max_iter; ++it) {
        const double mid = 0.5 * (lo + hi);
        const double fmid = f(mid);
        res.iterations = it + 1;
        if (fmid == 0.0 || (hi - lo) < xtol) {
            res.x = mid;
            res.value = fmid;
            res.converged = true;
            return res;
        }
        if ((fmid > 0.0) == (flo > 0.0)) {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    res.x = 0.5 * (lo + hi);
    res.value = f(res.x);
    res.converged = (hi - lo) < xtol * 16;
    return res;
}

/// Maximize a unimodal f over [lo, hi] by golden-section search.
template <typename F>
[[nodiscard]] SolveResult golden_max(F&& f, double lo, double hi, double xtol = 1e-10,
                                     int max_iter = 400) {
    if (!(hi >= lo)) throw std::invalid_argument("golden_max: hi < lo");
    constexpr double inv_phi = 0.6180339887498949;
    double a = lo, b = hi;
    double c = b - inv_phi * (b - a);
    double d = a + inv_phi * (b - a);
    double fc = f(c), fd = f(d);
    SolveResult res;
    int it = 0;
    while ((b - a) > xtol && it < max_iter) {
        if (fc > fd) {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = f(d);
        }
        ++it;
    }
    res.x = 0.5 * (a + b);
    res.value = f(res.x);
    res.iterations = it;
    res.converged = (b - a) <= xtol * 16;
    return res;
}

}  // namespace ccap::util
