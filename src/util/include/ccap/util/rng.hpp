// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component in the library (channels, schedulers, protocol
// executions, Monte-Carlo estimators) draws from an explicitly seeded Rng so
// that every experiment in EXPERIMENTS.md is bit-reproducible. The generator
// is xoshiro256** seeded through SplitMix64, which is both fast and of far
// higher quality than std::minstd/rand and, unlike std::mt19937, has a
// guaranteed cross-platform stream for a given seed.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace ccap::util {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

/// Seed of the `index`-th parallel substream of a root seed. Stateless and
/// order-free: worker k can seed Rng(substream_seed(root, k)) without
/// touching any shared generator, so a parallel Monte-Carlo run is
/// bit-identical for every thread count. Distinct indices land on distinct
/// SplitMix64 golden-ratio offsets, giving well-separated xoshiro states.
[[nodiscard]] constexpr std::uint64_t substream_seed(std::uint64_t root,
                                                    std::uint64_t index) noexcept {
    std::uint64_t state = root + 0x9E3779B97F4A7C15ULL * index;
    return splitmix64(state);
}

/// xoshiro256** 1.0 — deterministic, seedable, 2^256-1 period.
class Rng {
public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x5EEDC0DEDEADBEEFULL) noexcept { reseed(seed); }

    void reseed(std::uint64_t seed) noexcept {
        std::uint64_t sm = seed;
        for (auto& word : state_) word = splitmix64(sm);
    }

    /// Next 64 uniformly distributed bits.
    [[nodiscard]] std::uint64_t next() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    // UniformRandomBitGenerator interface (usable with <random> adaptors).
    [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
    [[nodiscard]] static constexpr result_type max() noexcept { return ~0ULL; }
    result_type operator()() noexcept { return next(); }

    /// Uniform double in [0, 1) with 53 bits of randomness.
    [[nodiscard]] double uniform() noexcept {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// Uniform integer in [0, bound). Requires bound > 0. Unbiased (rejection).
    [[nodiscard]] std::uint64_t uniform_below(std::uint64_t bound) noexcept;

    /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
    [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
        return lo + static_cast<std::int64_t>(
                        uniform_below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /// Bernoulli trial: true with probability p (clamped to [0,1]).
    [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

    /// Sample an index from an (unnormalized) non-negative weight vector.
    /// For non-empty weights the result is always in range: a degenerate
    /// all-zero vector falls back to a uniform draw rather than a biased
    /// fixed index. Empty weights return 0 (there is no valid index).
    [[nodiscard]] std::size_t categorical(std::span<const double> weights) noexcept;

    /// Geometric: number of failures before first success, success prob p in (0,1].
    [[nodiscard]] std::uint64_t geometric(double p) noexcept;

    /// Standard normal via Box-Muller (no cached spare: deterministic stream).
    [[nodiscard]] double normal() noexcept;

    /// Fisher–Yates in-place shuffle.
    template <typename T>
    void shuffle(std::vector<T>& items) noexcept {
        for (std::size_t i = items.size(); i > 1; --i) {
            using std::swap;
            swap(items[i - 1], items[uniform_below(i)]);
        }
    }

    /// Derive an independent child generator (for parallel/striped streams).
    [[nodiscard]] Rng split() noexcept { return Rng(next() ^ 0xA5A5A5A55A5A5A5AULL); }

private:
    [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }
    std::array<std::uint64_t, 4> state_{};
};

}  // namespace ccap::util
