#pragma once
// Sharded, bounded memo-cache for deterministic computations.
//
// The cache is keyed by value-type keys and stores values that are a pure
// function of the key (the contention engine derives every Monte-Carlo seed
// from the key itself, see capacity_cache.hpp). That property is what makes
// the cache safe to use from the deterministic parallel harness: two threads
// racing on the same missing key both compute the *same* value, so whichever
// insert lands first is indistinguishable from the other, and cached replies
// are bit-identical to cache-off recomputation.
//
// Sharding: keys are distributed over N independently-locked shards by hash,
// so concurrent lookups on different keys rarely contend on the same mutex.
// Each shard is bounded: insertion beyond `per_shard_capacity` evicts the
// oldest entry of that shard (FIFO). FIFO — not LRU — keeps the lock hold
// time O(1) and the eviction order independent of lookup order, which keeps
// behaviour reproducible across thread schedules for a fixed insert order.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ccap::util {

struct ShardCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;
};

template <typename K, typename V, typename Hash = std::hash<K>>
class ShardedMemoCache {
  public:
    explicit ShardedMemoCache(std::size_t shards = 16, std::size_t per_shard_capacity = 4096)
        : per_shard_capacity_(per_shard_capacity == 0 ? 1 : per_shard_capacity),
          shards_(shards == 0 ? 1 : shards) {}

    /// Returns the cached value, or nullopt on miss. Counts a hit/miss.
    std::optional<V> find(const K& key) {
        Shard& s = shard_for(key);
        std::lock_guard<std::mutex> lock(s.mu);
        auto it = s.map.find(key);
        if (it == s.map.end()) {
            ++s.misses;
            return std::nullopt;
        }
        ++s.hits;
        return it->second;
    }

    /// Inserts (or overwrites) `key -> value`, evicting the shard's oldest
    /// entry if the shard is full. Overwriting an existing key does not grow
    /// the shard and keeps the original FIFO position.
    void insert(const K& key, V value) {
        Shard& s = shard_for(key);
        std::lock_guard<std::mutex> lock(s.mu);
        auto it = s.map.find(key);
        if (it != s.map.end()) {
            it->second = std::move(value);
            return;
        }
        if (s.map.size() >= per_shard_capacity_) {
            s.map.erase(s.order.front());
            s.order.pop_front();
            ++s.evictions;
        }
        s.map.emplace(key, std::move(value));
        s.order.push_back(key);
    }

    /// find() + compute-on-miss. The computation runs *outside* the shard
    /// lock, so concurrent misses on one key may compute it more than once;
    /// for key-deterministic values every copy is identical and first-in
    /// wins harmlessly (insert overwrites with an equal value).
    template <typename Fn>
    V get_or_compute(const K& key, Fn&& fn) {
        if (auto hit = find(key)) return *std::move(hit);
        V value = std::forward<Fn>(fn)(key);
        insert(key, value);
        return value;
    }

    ShardCacheStats stats() const {
        ShardCacheStats out;
        for (const Shard& s : shards_) {
            std::lock_guard<std::mutex> lock(s.mu);
            out.hits += s.hits;
            out.misses += s.misses;
            out.evictions += s.evictions;
            out.entries += s.map.size();
        }
        return out;
    }

    void clear() {
        for (Shard& s : shards_) {
            std::lock_guard<std::mutex> lock(s.mu);
            s.map.clear();
            s.order.clear();
        }
    }

    std::size_t shard_count() const { return shards_.size(); }
    std::size_t per_shard_capacity() const { return per_shard_capacity_; }

  private:
    struct Shard {
        mutable std::mutex mu;
        std::unordered_map<K, V, Hash> map;
        std::deque<K> order;  // FIFO insertion order for bounded eviction
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
    };

    Shard& shard_for(const K& key) {
        // Mix the hash so that power-of-two shard counts still spread keys
        // whose std::hash is the identity (integers under libstdc++).
        std::uint64_t h = static_cast<std::uint64_t>(Hash{}(key));
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
        return shards_[h % shards_.size()];
    }

    std::size_t per_shard_capacity_;
    std::deque<Shard> shards_;  // deque: Shard is immovable (mutex)
};

}  // namespace ccap::util
