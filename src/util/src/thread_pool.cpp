#include "ccap/util/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <limits>
#include <memory>
#include <stdexcept>

namespace ccap::util {

ThreadPool::ThreadPool(unsigned num_threads) {
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0) num_threads = 1;
    }
    workers_.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stop_) throw std::runtime_error("ThreadPool::submit: pool is shutting down");
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

bool ThreadPool::try_run_one() {
    std::function<void()> task;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (queue_.empty()) return false;
        task = std::move(queue_.front());
        queue_.pop_front();
    }
    task();
    return true;
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            // Drain the queue even during shutdown: every submitted task runs.
            if (queue_.empty()) return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

ThreadPool& ThreadPool::shared() {
    static ThreadPool pool;  // sized to hardware concurrency; joined at exit
    return pool;
}

namespace {

/// Shared state of one parallel_for: an atomic work cursor plus a
/// completion latch for the helper tasks pushed onto the pool.
struct ForkJoin {
    std::atomic<std::size_t> next{0};
    std::atomic<unsigned> helpers_left{0};
    std::size_t n = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t error_index = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;

    void run_share() noexcept {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n) return;
            try {
                (*body)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex);
                if (i < error_index) {
                    error_index = i;
                    error = std::current_exception();
                }
            }
        }
    }
};

}  // namespace

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body, unsigned max_threads) {
    if (n == 0) return;
    unsigned lanes = max_threads != 0 ? max_threads : pool.size() + 1;
    if (static_cast<std::size_t>(lanes) > n) lanes = static_cast<unsigned>(n);
    if (lanes <= 1) {
        // Exactly-serial path: no pool traffic, no synchronization.
        for (std::size_t i = 0; i < n; ++i) body(i);
        return;
    }

    const auto state = std::make_shared<ForkJoin>();
    state->n = n;
    state->body = &body;
    const unsigned helpers = lanes - 1;
    state->helpers_left.store(helpers, std::memory_order_relaxed);
    for (unsigned h = 0; h < helpers; ++h) {
        pool.submit([state] {
            state->run_share();
            std::lock_guard<std::mutex> lock(state->mutex);
            if (state->helpers_left.fetch_sub(1, std::memory_order_acq_rel) == 1)
                state->done_cv.notify_all();
        });
    }

    state->run_share();

    // The range is fully claimed; wait for helpers still running (or still
    // queued — run them ourselves, which keeps nested fork-joins live).
    std::unique_lock<std::mutex> lock(state->mutex);
    while (state->helpers_left.load(std::memory_order_acquire) != 0) {
        lock.unlock();
        if (!pool.try_run_one()) {
            lock.lock();
            state->done_cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
                return state->helpers_left.load(std::memory_order_acquire) == 0;
            });
        } else {
            lock.lock();
        }
    }
    if (state->error) std::rethrow_exception(state->error);
}

}  // namespace ccap::util
