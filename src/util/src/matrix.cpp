#include "ccap/util/matrix.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace ccap::util {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    if ((rows == 0) != (cols == 0))
        throw std::invalid_argument("Matrix: rows and cols must be both zero or both nonzero");
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& r : rows) {
        if (r.size() != cols_)
            throw std::invalid_argument("Matrix: ragged initializer list");
        data_.insert(data_.end(), r.begin(), r.end());
    }
}

double& Matrix::at(std::size_t r, std::size_t c) {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
    return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
    return data_[r * cols_ + c];
}

std::vector<double> Matrix::mat_vec(std::span<const double> x) const {
    if (x.size() != cols_) throw std::invalid_argument("Matrix::mat_vec: size mismatch");
    std::vector<double> y(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        const double* row_ptr = data_.data() + r * cols_;
        for (std::size_t c = 0; c < cols_; ++c) acc += row_ptr[c] * x[c];
        y[r] = acc;
    }
    return y;
}

std::vector<double> Matrix::transpose_vec(std::span<const double> x) const {
    if (x.size() != rows_) throw std::invalid_argument("Matrix::transpose_vec: size mismatch");
    std::vector<double> y(cols_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        const double xr = x[r];
        const double* row_ptr = data_.data() + r * cols_;
        for (std::size_t c = 0; c < cols_; ++c) y[c] += row_ptr[c] * xr;
    }
    return y;
}

Matrix Matrix::transpose() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
    if (cols_ != other.rows_)
        throw std::invalid_argument("Matrix::multiply: inner dimension mismatch");
    Matrix out(rows_, other.cols_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = (*this)(r, k);
            if (a == 0.0) continue;
            for (std::size_t c = 0; c < other.cols_; ++c) out(r, c) += a * other(k, c);
        }
    return out;
}

bool Matrix::is_row_stochastic(double tol) const noexcept {
    for (std::size_t r = 0; r < rows_; ++r) {
        double sum = 0.0;
        for (double v : row(r)) {
            if (v < -tol) return false;
            sum += v;
        }
        if (std::abs(sum - 1.0) > tol) return false;
    }
    return rows_ > 0;
}

void Matrix::normalize_rows() {
    for (std::size_t r = 0; r < rows_; ++r) {
        double sum = 0.0;
        for (double v : row(r)) sum += v;
        if (sum <= 0.0) throw std::domain_error("Matrix::normalize_rows: nonpositive row sum");
        for (double& v : row(r)) v /= sum;
    }
}

double Matrix::spectral_radius(int iterations, double tol) const {
    if (rows_ != cols_) throw std::invalid_argument("spectral_radius: matrix not square");
    if (rows_ == 0) throw std::invalid_argument("spectral_radius: empty matrix");
    std::vector<double> v(rows_, 1.0 / static_cast<double>(rows_));
    double lambda = 0.0;
    for (int it = 0; it < iterations; ++it) {
        std::vector<double> w = mat_vec(v);
        double norm = 0.0;
        for (double x : w) norm += std::abs(x);
        if (norm == 0.0) return 0.0;  // nilpotent direction; radius 0 for our use
        for (double& x : w) x /= norm;
        const double prev = lambda;
        lambda = norm;
        v = std::move(w);
        if (it > 0 && std::abs(lambda - prev) < tol * std::max(1.0, lambda)) break;
    }
    return lambda;
}

std::string Matrix::to_string(int precision) const {
    std::ostringstream os;
    os << std::setprecision(precision) << std::fixed;
    for (std::size_t r = 0; r < rows_; ++r) {
        os << "[";
        for (std::size_t c = 0; c < cols_; ++c) os << (c ? ", " : " ") << (*this)(r, c);
        os << " ]\n";
    }
    return os.str();
}

}  // namespace ccap::util
