#include "ccap/util/cpu_features.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace ccap::util {

namespace {

struct Detected {
    bool avx2 = false;
    bool avx512f = false;
    bool neon = false;
};

Detected detect() {
    Detected d;
#if defined(__x86_64__) || defined(__i386__)
    // __builtin_cpu_supports folds in the OS XSAVE state checks, so a
    // kernel that disabled AVX-512 state reports unsupported here too.
    __builtin_cpu_init();
    d.avx2 = __builtin_cpu_supports("avx2") != 0;
    d.avx512f = __builtin_cpu_supports("avx512f") != 0;
#elif defined(__aarch64__) || defined(_M_ARM64)
    d.neon = true;  // Advanced SIMD is baseline on AArch64.
#endif
    return d;
}

const Detected& features() {
    static const Detected d = detect();
    return d;
}

/// Best available path at or below `want` (scalar is always available).
SimdPath clamp_to_available(SimdPath want) {
    for (int p = static_cast<int>(want); p > 0; --p)
        if (simd_path_available(static_cast<SimdPath>(p))) return static_cast<SimdPath>(p);
    return SimdPath::scalar;
}

std::atomic<int> g_active{-1};
std::once_flag g_resolve_once;

void resolve_from_env() {
    SimdPath path = best_simd_path();
    if (const char* env = std::getenv("CCAP_SIMD"); env != nullptr && env[0] != '\0') {
        SimdPath requested{};
        if (parse_simd_path(env, requested)) {
            path = clamp_to_available(requested);
        } else {
            std::fprintf(stderr,
                         "ccap: ignoring unknown CCAP_SIMD='%s' "
                         "(use scalar|neon|avx2|avx512)\n",
                         env);
        }
    }
    g_active.store(static_cast<int>(path), std::memory_order_relaxed);
}

}  // namespace

const char* simd_path_name(SimdPath path) noexcept {
    switch (path) {
        case SimdPath::scalar: return "scalar";
        case SimdPath::neon: return "neon";
        case SimdPath::avx2: return "avx2";
        case SimdPath::avx512: return "avx512";
    }
    return "scalar";
}

bool parse_simd_path(const std::string& text, SimdPath& out) noexcept {
    if (text == "scalar") out = SimdPath::scalar;
    else if (text == "neon") out = SimdPath::neon;
    else if (text == "avx2") out = SimdPath::avx2;
    else if (text == "avx512") out = SimdPath::avx512;
    else return false;
    return true;
}

std::size_t simd_vector_doubles(SimdPath path) noexcept {
    switch (path) {
        case SimdPath::scalar: return 1;
        case SimdPath::neon: return 2;
        case SimdPath::avx2: return 4;
        case SimdPath::avx512: return 8;
    }
    return 1;
}

bool cpu_supports(SimdPath path) noexcept {
    const Detected& d = features();
    switch (path) {
        case SimdPath::scalar: return true;
        case SimdPath::neon: return d.neon;
        case SimdPath::avx2: return d.avx2;
        case SimdPath::avx512: return d.avx512f;
    }
    return false;
}

bool simd_path_available(SimdPath path) noexcept {
    if (!cpu_supports(path)) return false;
    switch (path) {
        case SimdPath::scalar:
            return true;
        case SimdPath::neon:
#if defined(CCAP_HAVE_KERNELS_NEON)
            return true;
#else
            return false;
#endif
        case SimdPath::avx2:
#if defined(CCAP_HAVE_KERNELS_AVX2)
            return true;
#else
            return false;
#endif
        case SimdPath::avx512:
#if defined(CCAP_HAVE_KERNELS_AVX512)
            return true;
#else
            return false;
#endif
    }
    return false;
}

SimdPath best_simd_path() noexcept {
    return clamp_to_available(SimdPath::avx512);
}

std::string cpu_feature_string() {
    const Detected& d = features();
    std::string out;
    const auto append = [&](const char* name) {
        if (!out.empty()) out += "+";
        out += name;
    };
    if (d.avx512f) append("avx512f");
    if (d.avx2) append("avx2");
    if (d.neon) append("neon");
    if (out.empty()) out = "baseline";
    return out;
}

SimdPath active_simd_path() noexcept {
    std::call_once(g_resolve_once, resolve_from_env);
    return static_cast<SimdPath>(g_active.load(std::memory_order_relaxed));
}

SimdPath force_simd_path(SimdPath path) noexcept {
    std::call_once(g_resolve_once, resolve_from_env);
    const SimdPath applied = clamp_to_available(path);
    g_active.store(static_cast<int>(applied), std::memory_order_relaxed);
    return applied;
}

}  // namespace ccap::util
