#include "ccap/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ccap::util {

void RunningStats::add(double x) noexcept {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

double RunningStats::variance() const noexcept {
    return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
    return n_ >= 2 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double RunningStats::ci_halfwidth(double z) const noexcept { return z * sem(); }

namespace {

/// One Kahan step: s += v with the rounding error carried in c. Written as
/// the canonical four-operation sequence; kept out of line-level cleverness
/// so no compiler reassociation (the build does not enable fast-math) can
/// collapse the compensation away.
inline void kahan_add(double& s, double& c, double v) noexcept {
    const double y = v - c;
    const double t = s + y;
    c = (t - s) - y;
    s = t;
}

}  // namespace

void CompensatedStats::add(double x) noexcept {
    if (n_ == 0) shift_ = x;  // pin the shift to the first sample
    ++n_;
    const double d = x - shift_;
    kahan_add(sum_, sum_c_, d);
    kahan_add(sq_, sq_c_, d * d);
}

double CompensatedStats::mean() const noexcept {
    return n_ ? shift_ + sum_ / static_cast<double>(n_) : 0.0;
}

double CompensatedStats::variance() const noexcept {
    if (n_ < 2) return 0.0;
    const double n = static_cast<double>(n_);
    // Shifted-data variance: both terms are at the noise scale (the shift
    // removed the large common mean), so the subtraction is benign.
    const double centered = sq_ - sum_ * sum_ / n;
    return std::max(0.0, centered / (n - 1.0));
}

double CompensatedStats::stddev() const noexcept { return std::sqrt(variance()); }

double CompensatedStats::sem() const noexcept {
    return n_ >= 2 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
    if (!(hi > lo) || bins == 0)
        throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
}

void Histogram::add(double x) noexcept {
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    auto bin = static_cast<std::size_t>((x - lo_) / width_);
    if (bin >= counts_.size()) bin = counts_.size() - 1;  // FP edge
    ++counts_[bin];
}

std::size_t Histogram::bin_count(std::size_t bin) const { return counts_.at(bin); }
double Histogram::bin_low(std::size_t bin) const {
    if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_low");
    return lo_ + width_ * static_cast<double>(bin);
}
double Histogram::bin_high(std::size_t bin) const { return bin_low(bin) + width_; }

double mean_of(std::span<const double> xs) noexcept {
    if (xs.empty()) return 0.0;
    double s = 0.0;
    for (double x : xs) s += x;
    return s / static_cast<double>(xs.size());
}

double percentile_of(std::span<const double> xs, double pct) {
    if (xs.empty()) return 0.0;
    if (pct < 0.0 || pct > 100.0) throw std::invalid_argument("percentile_of: pct out of range");
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    const double pos = pct / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace ccap::util
