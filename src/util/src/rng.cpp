#include "ccap/util/rng.hpp"

#include <cmath>
#include <numbers>

namespace ccap::util {

std::uint64_t Rng::uniform_below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    // Lemire-style rejection to remove modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;  // (2^64 - bound) mod bound
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold) return r % bound;
    }
}

std::size_t Rng::categorical(std::span<const double> weights) noexcept {
    if (weights.empty()) return 0;
    double total = 0.0;
    for (double w : weights) total += (w > 0.0 ? w : 0.0);
    // Degenerate all-zero weights: uniform is the only unbiased answer that
    // keeps the result in range (a clamped fixed index would skew samplers).
    if (total <= 0.0) return uniform_below(weights.size());
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const double w = weights[i] > 0.0 ? weights[i] : 0.0;
        if (target < w) return i;
        target -= w;
    }
    // Floating-point round-off: fall back to the last positive weight.
    for (std::size_t i = weights.size(); i-- > 0;)
        if (weights[i] > 0.0) return i;
    return weights.size() - 1;  // unreachable (total > 0), kept for safety
}

std::uint64_t Rng::geometric(double p) noexcept {
    if (p >= 1.0) return 0;
    if (p <= 0.0) return ~0ULL;  // degenerate: "never"
    // Inversion: floor(log(U)/log(1-p)).
    const double u = 1.0 - uniform();  // in (0,1]
    return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

double Rng::normal() noexcept {
    // Box-Muller, discarding the second variate to keep the stream simple.
    double u1 = uniform();
    const double u2 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace ccap::util
