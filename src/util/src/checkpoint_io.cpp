#include "ccap/util/checkpoint_io.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ccap::util {

namespace {

[[noreturn]] void fail(CheckpointError kind, const std::string& what) {
    throw CheckpointIoError(kind, what);
}

void check_key(const std::string& key) {
    if (key.empty() || key.find_first_of(" \t\n") != std::string::npos)
        throw std::invalid_argument("Checkpoint: key must be non-empty and space-free: '" +
                                    key + "'");
}

}  // namespace

const char* checkpoint_error_name(CheckpointError kind) noexcept {
    switch (kind) {
        case CheckpointError::unreadable: return "unreadable";
        case CheckpointError::malformed: return "malformed";
        case CheckpointError::truncated: return "truncated";
        case CheckpointError::version_mismatch: return "version mismatch";
    }
    return "unknown";
}

const std::string* Checkpoint::find(const std::string& key) const noexcept {
    for (const auto& [k, v] : entries_)
        if (k == key) return &v;
    return nullptr;
}

void Checkpoint::set_text(const std::string& key, const std::string& value) {
    check_key(key);
    if (find(key) != nullptr)
        throw std::invalid_argument("Checkpoint: duplicate key '" + key + "'");
    if (value.find('\n') != std::string::npos)
        throw std::invalid_argument("Checkpoint: value for '" + key + "' contains newline");
    entries_.emplace_back(key, value);
}

void Checkpoint::set_u64(const std::string& key, std::uint64_t value) {
    set_text(key, std::to_string(value));
}

void Checkpoint::set_double(const std::string& key, double value) {
    if (std::isnan(value))
        throw std::invalid_argument("Checkpoint: NaN value for '" + key + "'");
    // %a round-trips every non-NaN double bit for bit via strtod, including
    // subnormals, infinities and the sign of zero.
    char buf[48];
    std::snprintf(buf, sizeof buf, "%a", value);
    set_text(key, buf);
}

bool Checkpoint::has(const std::string& key) const noexcept { return find(key) != nullptr; }

const std::string& Checkpoint::text(const std::string& key) const {
    const std::string* v = find(key);
    if (v == nullptr) fail(CheckpointError::malformed, "missing checkpoint field '" + key + "'");
    return *v;
}

std::uint64_t Checkpoint::u64(const std::string& key) const {
    const std::string& v = text(key);
    char* end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
    if (errno != 0 || end == v.c_str() || *end != '\0' || v[0] == '-')
        fail(CheckpointError::malformed,
             "checkpoint field '" + key + "' is not a non-negative integer: '" + v + "'");
    return parsed;
}

double Checkpoint::number(const std::string& key) const {
    const std::string& v = text(key);
    char* end = nullptr;
    const double parsed = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0' || std::isnan(parsed))
        fail(CheckpointError::malformed,
             "checkpoint field '" + key + "' is not a number: '" + v + "'");
    return parsed;
}

void Checkpoint::write(std::ostream& out) const {
    out << "# " << kMagic << " v" << kVersion << " fields=" << entries_.size() << "\n";
    for (const auto& [k, v] : entries_) out << k << ' ' << v << "\n";
}

void Checkpoint::write_file(const std::string& path) const {
    // Temp-and-rename: the checkpoint at `path` is either the old complete
    // one or the new complete one, never a torn write.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp);
        if (!out) throw std::runtime_error("Checkpoint: cannot create '" + tmp + "'");
        write(out);
        out.flush();
        if (!out) throw std::runtime_error("Checkpoint: write to '" + tmp + "' failed");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        throw std::runtime_error("Checkpoint: cannot rename '" + tmp + "' to '" + path + "'");
}

Checkpoint Checkpoint::read(std::istream& in) {
    std::string line;
    // Header: the first non-blank line must be the framing comment.
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (!line.empty()) break;
    }
    if (line.empty()) fail(CheckpointError::malformed, "empty checkpoint (no header)");

    int version = 0;
    unsigned long long fields = 0;
    char magic[32] = {0};
    // "# ccap-track v1 fields=N" — scan the magic separately so a header
    // from another tool reads as malformed, not as a version mismatch.
    if (std::sscanf(line.c_str(), "# %31s v%d fields=%llu", magic, &version, &fields) != 3 ||
        std::string(magic) != kMagic)
        fail(CheckpointError::malformed, "not a " + std::string(kMagic) +
                                             " checkpoint header: '" + line + "'");
    if (version != kVersion)
        fail(CheckpointError::version_mismatch,
             "checkpoint is " + std::string(kMagic) + " v" + std::to_string(version) +
                 ", this build reads v" + std::to_string(kVersion));

    Checkpoint chk;
    while (chk.entries_.size() < fields && std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        const std::size_t space = line.find(' ');
        if (space == std::string::npos || space == 0)
            fail(CheckpointError::malformed, "bad checkpoint field line: '" + line + "'");
        const std::string key = line.substr(0, space);
        if (chk.find(key) != nullptr)
            fail(CheckpointError::malformed, "duplicate checkpoint field '" + key + "'");
        chk.entries_.emplace_back(key, line.substr(space + 1));
    }
    if (chk.entries_.size() < fields)
        fail(CheckpointError::truncated,
             "checkpoint declares " + std::to_string(fields) + " fields, found " +
                 std::to_string(chk.entries_.size()));
    // Trailing lines past the declared count are ignored: a newer writer
    // may have appended fields this reader does not know about.
    return chk;
}

Checkpoint Checkpoint::read_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) fail(CheckpointError::unreadable, "cannot open checkpoint '" + path + "'");
    return read(in);
}

}  // namespace ccap::util
