#include "ccap/util/signal_flag.hpp"

#include <atomic>
#include <csignal>

namespace ccap::util {

namespace {

// Lock-free atomic flag: stores from a signal handler are only defined for
// lock-free atomics (and volatile sig_atomic_t); reads from the main loop
// and writes from the handler need no further synchronization.
std::atomic<bool> g_shutdown{false};
static_assert(std::atomic<bool>::is_always_lock_free);

extern "C" void ccap_shutdown_handler(int) { g_shutdown.store(true, std::memory_order_relaxed); }

}  // namespace

void install_shutdown_flag() noexcept {
    std::signal(SIGINT, &ccap_shutdown_handler);
    std::signal(SIGTERM, &ccap_shutdown_handler);
}

bool shutdown_requested() noexcept { return g_shutdown.load(std::memory_order_relaxed); }

void request_shutdown() noexcept { g_shutdown.store(true, std::memory_order_relaxed); }

void reset_shutdown_flag() noexcept { g_shutdown.store(false, std::memory_order_relaxed); }

}  // namespace ccap::util
