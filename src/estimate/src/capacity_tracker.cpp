#include "ccap/estimate/capacity_tracker.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <string>

#include "ccap/util/rng.hpp"

namespace ccap::estimate {

namespace {

constexpr double kZ = 1.96;  ///< confidence radius, matches the cache's

[[nodiscard]] std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
    std::uint64_t state = h ^ (v + 0x9e3779b97f4a7c15ULL);
    return util::splitmix64(state);
}

[[nodiscard]] std::uint64_t mix(std::uint64_t h, double v) noexcept {
    return mix(h, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

const char* tracker_status_name(TrackerStatus status) noexcept {
    switch (status) {
        case TrackerStatus::warmup: return "warmup";
        case TrackerStatus::tracking: return "tracking";
        case TrackerStatus::drifting: return "drifting";
        case TrackerStatus::resync: return "resync";
        case TrackerStatus::degraded: return "degraded";
    }
    return "unknown";
}

void TrackerConfig::validate() const {
    if (window_len == 0)
        throw std::invalid_argument("TrackerConfig: window_len must be > 0");
    if (!std::isfinite(smoothing) || smoothing <= 0.0 || smoothing > 1.0)
        throw std::domain_error("TrackerConfig: smoothing must be finite in (0,1]");
    if (trend_window < 3)
        throw std::invalid_argument("TrackerConfig: trend_window must be >= 3");
    if (!std::isfinite(drift_slope) || drift_slope <= 0.0)
        throw std::domain_error("TrackerConfig: drift_slope must be finite and > 0");
    if (drift_sustain == 0)
        throw std::invalid_argument("TrackerConfig: drift_sustain must be >= 1");
    if (!std::isfinite(resync_jump) || resync_jump <= 0.0)
        throw std::domain_error("TrackerConfig: resync_jump must be finite and > 0");
    if (!std::isfinite(ps_tolerance) || ps_tolerance <= 0.0)
        throw std::domain_error("TrackerConfig: ps_tolerance must be finite and > 0");
    if (!std::isfinite(aimd_increase) || aimd_increase <= 0.0)
        throw std::domain_error("TrackerConfig: aimd_increase must be finite and > 0");
    if (!std::isfinite(aimd_beta) || aimd_beta <= 0.0 || aimd_beta >= 1.0)
        throw std::domain_error("TrackerConfig: aimd_beta must be finite in (0,1)");
    if (!std::isfinite(headroom) || headroom <= 0.0 || headroom > 1.0)
        throw std::domain_error("TrackerConfig: headroom must be finite in (0,1]");
}

std::uint64_t TrackerConfig::fingerprint() const noexcept {
    // Output-affecting fields only: perf knobs (threads, prefetch, cache
    // sharding/capacity/enabled) are value-invariant by the cache's purity
    // contract and deliberately left out, so a checkpoint taken at one
    // thread count resumes at another.
    std::uint64_t h = 0x7eacc0de5eed01ULL;
    h = mix(h, static_cast<std::uint64_t>(window_len));
    h = mix(h, smoothing);
    h = mix(h, static_cast<std::uint64_t>(trend_window));
    h = mix(h, drift_slope);
    h = mix(h, static_cast<std::uint64_t>(drift_sustain));
    h = mix(h, resync_jump);
    h = mix(h, static_cast<std::uint64_t>(warmup_windows));
    h = mix(h, ps_tolerance);
    h = mix(h, aimd_increase);
    h = mix(h, aimd_beta);
    h = mix(h, headroom);
    h = mix(h, cache.grid.pd_step);
    h = mix(h, cache.grid.pi_step);
    h = mix(h, cache.grid.pd_max);
    h = mix(h, cache.grid.pi_max);
    h = mix(h, cache.base.p_s);
    h = mix(h, static_cast<std::uint64_t>(cache.base.alphabet));
    h = mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(cache.base.max_drift)));
    h = mix(h, static_cast<std::uint64_t>(
                   static_cast<std::uint32_t>(cache.base.max_insert_run)));
    h = mix(h, cache.base.band_eps);
    h = mix(h, static_cast<std::uint64_t>(cache.mc.block_len));
    h = mix(h, static_cast<std::uint64_t>(cache.mc.num_blocks));
    h = mix(h, cache.mc.band_eps);
    h = mix(h, cache.mc.target_sem);
    h = mix(h, static_cast<std::uint64_t>(cache.mc.max_blocks));
    h = mix(h, static_cast<std::uint64_t>(cache.mc.point_tile));
    h = mix(h, cache.mc.crn_root);
    h = mix(h, cache.target_interp_err);
    h = mix(h, cache.seed);
    return h;
}

CapacityTracker::CapacityTracker(TrackerConfig cfg)
    : cfg_((cfg.validate(), std::move(cfg))), cache_(cfg_.cache) {
    // Half-step quantization margin: capacity moves at most ~bits per unit
    // probability, and snapping to the nearest node perturbs (P_d, P_i) by
    // at most half a step each.
    const double bits = std::log2(static_cast<double>(cfg_.cache.base.alphabet));
    quant_margin_ =
        0.5 * bits * (cfg_.cache.grid.pd_step + cfg_.cache.grid.pi_step);
}

void CapacityTracker::push_trend(double pd) {
    trend_.push_back(pd);
    if (trend_.size() > cfg_.trend_window) trend_.erase(trend_.begin());
}

double CapacityTracker::slope() const noexcept {
    // OLS slope of window P_d against window index — the trendline
    // detector. Fixed left-to-right accumulation order: deterministic.
    const std::size_t n = trend_.size();
    if (n < 3) return 0.0;
    const double mean_x = static_cast<double>(n - 1) / 2.0;
    double mean_y = 0.0;
    for (const double y : trend_) mean_y += y;
    mean_y /= static_cast<double>(n);
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = static_cast<double>(i) - mean_x;
        num += dx * (trend_[i] - mean_y);
        den += dx * dx;
    }
    return den > 0.0 ? num / den : 0.0;
}

double CapacityTracker::bound() const noexcept {
    return kZ * std::sqrt(ewma_var_) + quant_margin_;
}

void CapacityTracker::prefetch_ahead(info::CapacityKey current, double pd,
                                     double pi, double slp) {
    if (cfg_.prefetch == 0 || slp == 0.0) return;
    std::vector<info::CapacityKey> keys;
    for (std::size_t step = 1; step <= cfg_.prefetch; ++step) {
        const double pd_pred = pd + slp * static_cast<double>(step);
        const info::CapacityKey key = cache_.quantize(pd_pred, pi);
        if (key == current) continue;
        if (std::find(keys.begin(), keys.end(), key) == keys.end())
            keys.push_back(key);
    }
    // Warm-up only: node values are pure functions of (config, key), so
    // whether a later at() hits this prefetch or recomputes is invisible
    // in the output stream — which is why `threads` cannot break the
    // bit-identity contract.
    if (!keys.empty()) cache_.ensure(keys, cfg_.threads);
}

TrackerUpdate CapacityTracker::degrade(const core::StreamChunk& chunk,
                                       const ParamEstimate* est) {
    TrackerUpdate u;
    u.window = chunk.index;
    u.status = TrackerStatus::degraded;
    if (est != nullptr) {
        // Report the (finite) raw estimates that triggered the degrade so
        // the operator can see *why* — e.g. P_d ~ 1 on an all-deleted
        // window — without them contaminating the smoothed state.
        const auto finite_or_zero = [](double v) {
            return std::isfinite(v) ? v : 0.0;
        };
        u.p_d = finite_or_zero(est->p_d.value);
        u.p_i = finite_or_zero(est->p_i.value);
        u.p_s = finite_or_zero(est->p_s.value);
    }
    ++stale_streak_;
    u.stale_windows = stale_streak_;
    if (have_smoothed_) {
        u.capacity = ewma_cap_;
        u.sem = std::sqrt(ewma_var_);
        u.bound = bound();
    }
    // Blind windows back the served rate off multiplicatively: the longer
    // the outage, the less we claim to be able to push.
    served_ *= cfg_.aimd_beta;
    u.served_rate = served_;
    u.resyncs = resyncs_;
    drift_streak_ = 0;
    ++windows_;
    last_ = u;
    return u;
}

TrackerUpdate CapacityTracker::ingest(const core::StreamChunk& chunk) {
    if (chunk.sent.empty()) return degrade(chunk, nullptr);

    const WindowEstimate we = estimate_window(chunk.sent, chunk.received);
    const ParamEstimate& est = we.estimate;
    const double pd = est.p_d.value;
    const double pi = est.p_i.value;
    const double ps = est.p_s.value;
    if (!std::isfinite(pd) || !std::isfinite(pi) || !std::isfinite(ps))
        return degrade(chunk, &est);
    // Outside the tracked grid (clamping would silently report the edge
    // node's capacity for a channel that may be far worse — e.g. the
    // all-deleted window estimating P_d = 1): degrade explicitly.
    const auto& grid = cfg_.cache.grid;
    if (pd > grid.pd_max + 0.5 * grid.pd_step ||
        pi > grid.pi_max + 0.5 * grid.pi_step || pd + pi >= 1.0)
        return degrade(chunk, &est);
    // The grid pins p_s at the base value; a window whose substitution
    // estimate is far from it (stuck-at faults, substitution-noise floods)
    // is not described by any node.
    if (std::abs(ps - cfg_.cache.base.p_s) > cfg_.ps_tolerance)
        return degrade(chunk, &est);

    TrackerUpdate u;
    u.window = chunk.index;
    u.p_d = pd;
    u.p_i = pi;
    u.p_s = ps;
    stale_streak_ = 0;

    push_trend(pd);
    const double slp = slope();
    u.trend_slope = slp;
    if (std::abs(slp) > cfg_.drift_slope)
        ++drift_streak_;
    else
        drift_streak_ = 0;
    const bool sustained = drift_streak_ >= cfg_.drift_sustain;
    u.drift = sustained;

    const info::CapacityKey key = cache_.quantize(pd, pi);
    const info::MiEstimate mi = cache_.at(key);
    u.window_capacity = mi.rate;
    u.window_sem = mi.sem;
    u.mc_blocks = mi.blocks;
    u.converged = mi.converged;

    const bool in_warmup = windows_ < cfg_.warmup_windows;
    const bool jumped = have_smoothed_ && !in_warmup &&
                        std::abs(pd - ewma_pd_) > cfg_.resync_jump;
    if (!have_smoothed_ || jumped) {
        // First window, or change-point reset: the smoothed state (if any)
        // certifies itself stale — |window P_d - smoothed P_d| exceeds the
        // threshold — so carrying it forward would blend two regimes.
        // Re-pin to the current window.
        ewma_cap_ = mi.rate;
        ewma_var_ = mi.sem * mi.sem;
        ewma_pd_ = pd;
        ewma_pi_ = pi;
        if (jumped) ++resyncs_;
        have_smoothed_ = true;
        u.status = jumped ? TrackerStatus::resync
                          : (in_warmup ? TrackerStatus::warmup
                                       : TrackerStatus::tracking);
    } else {
        // Incremental EWMA form: a constant input is a bit-exact fixed
        // point (s + a*0 == s), which is what lets a stationary stream
        // reproduce the batch node estimate bit for bit.
        const double a = cfg_.smoothing;
        ewma_cap_ += a * (mi.rate - ewma_cap_);
        ewma_var_ = (1.0 - a) * (1.0 - a) * ewma_var_ + a * a * mi.sem * mi.sem;
        ewma_pd_ += a * (pd - ewma_pd_);
        ewma_pi_ += a * (pi - ewma_pi_);
        u.status = in_warmup ? TrackerStatus::warmup
                             : (sustained ? TrackerStatus::drifting
                                          : TrackerStatus::tracking);
    }
    u.capacity = ewma_cap_;
    u.sem = std::sqrt(ewma_var_);
    u.bound = bound();
    u.resyncs = resyncs_;

    // AIMD: converge on headroom * smoothed capacity additively; back off
    // multiplicatively whenever the estimate itself is in question.
    const double target = cfg_.headroom * ewma_cap_;
    if (u.status == TrackerStatus::resync) {
        served_ = std::min(served_, target) * cfg_.aimd_beta;
    } else if (u.status == TrackerStatus::drifting) {
        served_ *= cfg_.aimd_beta;
    } else if (served_ > target) {
        served_ = target * cfg_.aimd_beta;
    } else {
        served_ = std::min(target, served_ + cfg_.aimd_increase);
    }
    u.served_rate = served_;

    prefetch_ahead(key, pd, pi, slp);

    ++windows_;
    last_ = u;
    return u;
}

util::Checkpoint CapacityTracker::checkpoint() const {
    util::Checkpoint cp;
    cp.set_u64("fingerprint", cfg_.fingerprint());
    cp.set_u64("windows", windows_);
    cp.set_u64("have_smoothed", have_smoothed_ ? 1 : 0);
    cp.set_double("ewma_cap", ewma_cap_);
    cp.set_double("ewma_var", ewma_var_);
    cp.set_double("ewma_pd", ewma_pd_);
    cp.set_double("ewma_pi", ewma_pi_);
    cp.set_u64("drift_streak", drift_streak_);
    cp.set_u64("resyncs", resyncs_);
    cp.set_u64("stale_streak", stale_streak_);
    cp.set_double("served", served_);
    cp.set_u64("trend_len", trend_.size());
    for (std::size_t i = 0; i < trend_.size(); ++i)
        cp.set_double("trend_" + std::to_string(i), trend_[i]);
    return cp;
}

CapacityTracker CapacityTracker::resume(TrackerConfig cfg,
                                        const util::Checkpoint& state) {
    CapacityTracker t(std::move(cfg));
    if (state.u64("fingerprint") != t.cfg_.fingerprint())
        throw util::CheckpointIoError(
            util::CheckpointError::malformed,
            "checkpoint was written under a different tracker configuration "
            "(fingerprint mismatch)");
    t.windows_ = state.u64("windows");
    t.have_smoothed_ = state.u64("have_smoothed") != 0;
    t.ewma_cap_ = state.number("ewma_cap");
    t.ewma_var_ = state.number("ewma_var");
    t.ewma_pd_ = state.number("ewma_pd");
    t.ewma_pi_ = state.number("ewma_pi");
    t.drift_streak_ = state.u64("drift_streak");
    t.resyncs_ = state.u64("resyncs");
    t.stale_streak_ = state.u64("stale_streak");
    t.served_ = state.number("served");
    const std::uint64_t n = state.u64("trend_len");
    if (n > t.cfg_.trend_window)
        throw util::CheckpointIoError(
            util::CheckpointError::malformed,
            "checkpoint trend_len exceeds the configured trend window");
    t.trend_.clear();
    for (std::uint64_t i = 0; i < n; ++i)
        t.trend_.push_back(state.number("trend_" + std::to_string(i)));
    return t;
}

TraceChunkSource::TraceChunkSource(std::vector<std::uint32_t> sent,
                                   std::vector<std::uint32_t> received,
                                   std::size_t window_len)
    : sent_(std::move(sent)),
      received_(std::move(received)),
      window_len_(window_len) {
    if (window_len_ == 0)
        throw std::invalid_argument("TraceChunkSource: window_len must be > 0");
}

std::optional<core::StreamChunk> TraceChunkSource::next() {
    if (sent_pos_ >= sent_.size()) return std::nullopt;
    const std::size_t n = std::min(window_len_, sent_.size() - sent_pos_);
    core::StreamChunk chunk;
    chunk.index = index_++;
    chunk.sent.assign(sent_.begin() + static_cast<std::ptrdiff_t>(sent_pos_),
                      sent_.begin() + static_cast<std::ptrdiff_t>(sent_pos_ + n));

    std::size_t consumed = received_.size() - recv_pos_;
    if (sent_pos_ + n < sent_.size()) {
        // Interior window: end-free alignment against a slack-padded
        // received span decides how much of the stream this window
        // consumed — the windowed_rates cursor idiom (changepoint.hpp).
        const std::size_t slack = n / 2 + 32;
        const std::size_t avail = received_.size() - recv_pos_;
        const std::size_t w = std::min(n + slack, avail);
        const WindowEstimate win = estimate_window(
            std::span<const std::uint32_t>(chunk.sent),
            std::span<const std::uint32_t>(received_.data() + recv_pos_, w));
        consumed = std::min(avail, win.received_consumed);
    }
    chunk.received.assign(
        received_.begin() + static_cast<std::ptrdiff_t>(recv_pos_),
        received_.begin() + static_cast<std::ptrdiff_t>(recv_pos_ + consumed));
    recv_pos_ += consumed;
    sent_pos_ += n;
    return chunk;
}

}  // namespace ccap::estimate
