#include "ccap/estimate/report.hpp"

#include <cstdio>
#include <sstream>

namespace ccap::estimate {

std::string render_report(const AnalysisReport& report, const std::string& title) {
    std::ostringstream os;
    char line[256];
    os << "=== covert channel analysis: " << title << " ===\n";
    std::snprintf(line, sizeof line,
                  "  P_d = %.4f  [%.4f, %.4f]\n  P_i = %.4f  [%.4f, %.4f]\n"
                  "  P_s = %.4f  [%.4f, %.4f]\n",
                  report.params.p_d.value, report.params.p_d.ci_low, report.params.p_d.ci_high,
                  report.params.p_i.value, report.params.p_i.ci_low, report.params.p_i.ci_high,
                  report.params.p_s.value, report.params.p_s.ci_low, report.params.p_s.ci_high);
    os << line;
    std::snprintf(line, sizeof line,
                  "  traditional (synchronous-model) capacity : %.4f bits/use\n",
                  report.traditional_bits_per_use);
    os << line;
    std::snprintf(line, sizeof line,
                  "  non-synchronous band (Thm5 / exact / Thm1): %.4f / %.4f / %.4f bits/use\n",
                  report.band_bits_per_use.lower, report.band_bits_per_use.exact_protocol,
                  report.band_bits_per_use.upper);
    os << line;
    std::snprintf(line, sizeof line,
                  "  degraded capacity (Sec 4.3, C*(1-P_d))   : %.4f bits/use = %.2f bits/s\n",
                  report.degraded_bits_per_use, report.degraded_bits_per_second);
    os << line;
    os << "  severity (NCSC-TG-030-style)              : " << severity_name(report.severity)
       << "\n";
    return os.str();
}

std::string render_row_header() {
    return "p_d,p_i,p_s,traditional,thm5_lower,exact,thm1_upper,degraded,bits_per_s,severity";
}

std::string render_row(const AnalysisReport& report) {
    char line[256];
    std::snprintf(line, sizeof line, "%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.2f,%s",
                  report.params.p_d.value, report.params.p_i.value, report.params.p_s.value,
                  report.traditional_bits_per_use, report.band_bits_per_use.lower,
                  report.band_bits_per_use.exact_protocol, report.band_bits_per_use.upper,
                  report.degraded_bits_per_use, report.degraded_bits_per_second,
                  severity_name(report.severity));
    return line;
}

}  // namespace ccap::estimate
