#include "ccap/estimate/alignment.hpp"

#include <algorithm>
#include <stdexcept>

#include "ccap/info/lattice_engine.hpp"

namespace ccap::estimate {

std::size_t Alignment::count(EditOp op) const noexcept {
    std::size_t c = 0;
    for (const EditStep& s : steps)
        if (s.op == op) ++c;
    return c;
}

std::string Alignment::to_string() const {
    std::string s;
    s.reserve(steps.size());
    for (const EditStep& step : steps) {
        switch (step.op) {
            case EditOp::match: s.push_back('M'); break;
            case EditOp::substitution: s.push_back('S'); break;
            case EditOp::deletion: s.push_back('D'); break;
            case EditOp::insertion: s.push_back('I'); break;
        }
    }
    return s;
}

Alignment align(std::span<const std::uint32_t> sent, std::span<const std::uint32_t> received) {
    const std::size_t n = sent.size();
    const std::size_t m = received.size();
    // Guard against quadratic blowup; callers with huge traces use the
    // blockwise estimator.
    if (n * m > 400'000'000ULL)
        throw std::invalid_argument("align: traces too long for full traceback alignment");

    // dp(i, j) = distance between sent[0..i) and received[0..j), as one
    // flat row-major trellis. The workspace is local, not thread-local:
    // the arena can reach hundreds of MB for long traces and must not
    // outlive the call inside a cached per-thread free list.
    info::LatticeWorkspace ws;
    const std::size_t stride = m + 1;
    const std::span<std::uint32_t> dp = ws.cells_u32((n + 1) * stride);
    const auto cell = [&](std::size_t i, std::size_t j) -> std::uint32_t& {
        return dp[i * stride + j];
    };
    for (std::size_t i = 0; i <= n; ++i) cell(i, 0) = static_cast<std::uint32_t>(i);
    for (std::size_t j = 0; j <= m; ++j) cell(0, j) = static_cast<std::uint32_t>(j);
    for (std::size_t i = 1; i <= n; ++i) {
        const std::uint32_t* prev = dp.data() + (i - 1) * stride;
        std::uint32_t* cur = dp.data() + i * stride;
        for (std::size_t j = 1; j <= m; ++j) {
            const std::uint32_t sub =
                prev[j - 1] + (sent[i - 1] == received[j - 1] ? 0U : 1U);
            const std::uint32_t del = prev[j] + 1U;
            const std::uint32_t ins = cur[j - 1] + 1U;
            cur[j] = std::min({sub, del, ins});
        }
    }

    Alignment out;
    out.distance = cell(n, m);
    // Traceback, preferring match > substitution > deletion > insertion.
    std::size_t i = n, j = m;
    std::vector<EditStep> rev;
    rev.reserve(std::max(n, m));
    while (i > 0 || j > 0) {
        if (i > 0 && j > 0) {
            const bool is_match = sent[i - 1] == received[j - 1];
            const std::uint32_t diag = cell(i - 1, j - 1) + (is_match ? 0U : 1U);
            if (diag == cell(i, j)) {
                rev.push_back({is_match ? EditOp::match : EditOp::substitution, i - 1, j - 1});
                --i;
                --j;
                continue;
            }
        }
        if (i > 0 && cell(i - 1, j) + 1U == cell(i, j)) {
            rev.push_back({EditOp::deletion, i - 1, 0});
            --i;
            continue;
        }
        rev.push_back({EditOp::insertion, 0, j - 1});
        --j;
    }
    out.steps.assign(rev.rbegin(), rev.rend());
    return out;
}

std::size_t edit_distance(std::span<const std::uint32_t> sent,
                          std::span<const std::uint32_t> received) {
    const std::size_t n = sent.size();
    const std::size_t m = received.size();
    // Two flat rows from a leased thread-local workspace; repeated calls
    // (the blockwise estimator's per-block distances) stay allocation-free.
    info::ScopedWorkspace lease;
    const std::span<std::uint32_t> rows = lease.get().cells_u32(2 * (m + 1));
    std::uint32_t* prev = rows.data();
    std::uint32_t* cur = rows.data() + (m + 1);
    for (std::size_t j = 0; j <= m; ++j) prev[j] = static_cast<std::uint32_t>(j);
    for (std::size_t i = 1; i <= n; ++i) {
        cur[0] = static_cast<std::uint32_t>(i);
        for (std::size_t j = 1; j <= m; ++j) {
            const std::uint32_t sub = prev[j - 1] + (sent[i - 1] == received[j - 1] ? 0U : 1U);
            cur[j] = std::min({sub, prev[j] + 1U, cur[j - 1] + 1U});
        }
        std::swap(prev, cur);
    }
    return prev[m];
}

}  // namespace ccap::estimate
