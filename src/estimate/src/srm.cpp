#include "ccap/estimate/srm.hpp"

#include <algorithm>
#include <stdexcept>

namespace ccap::estimate {

std::size_t SharedResourceMatrix::add_attribute(const std::string& name) {
    if (name.empty()) throw std::invalid_argument("SRM: empty attribute name");
    const auto it = std::find(attributes_.begin(), attributes_.end(), name);
    if (it != attributes_.end()) return static_cast<std::size_t>(it - attributes_.begin());
    attributes_.push_back(name);
    return attributes_.size() - 1;
}

void SharedResourceMatrix::add_operation(const std::string& name,
                                         const std::vector<std::string>& reads,
                                         const std::vector<std::string>& modifies) {
    if (name.empty()) throw std::invalid_argument("SRM: empty operation name");
    for (const Operation& op : operations_)
        if (op.name == name) throw std::invalid_argument("SRM: duplicate operation " + name);
    Operation op;
    op.name = name;
    for (const std::string& a : reads) op.reads.push_back(add_attribute(a));
    for (const std::string& a : modifies) op.modifies.push_back(add_attribute(a));
    operations_.push_back(std::move(op));
}

std::size_t SharedResourceMatrix::attribute_index(const std::string& name) const {
    const auto it = std::find(attributes_.begin(), attributes_.end(), name);
    if (it == attributes_.end()) throw std::out_of_range("SRM: unknown attribute " + name);
    return static_cast<std::size_t>(it - attributes_.begin());
}

bool SharedResourceMatrix::reads(const std::string& op_name,
                                 const std::string& attribute) const {
    const std::size_t a = attribute_index(attribute);
    for (const Operation& op : operations_)
        if (op.name == op_name)
            return std::find(op.reads.begin(), op.reads.end(), a) != op.reads.end();
    throw std::out_of_range("SRM: unknown operation " + op_name);
}

bool SharedResourceMatrix::modifies(const std::string& op_name,
                                    const std::string& attribute) const {
    const std::size_t a = attribute_index(attribute);
    for (const Operation& op : operations_)
        if (op.name == op_name)
            return std::find(op.modifies.begin(), op.modifies.end(), a) != op.modifies.end();
    throw std::out_of_range("SRM: unknown operation " + op_name);
}

std::vector<SharedResourceMatrix::Channel> SharedResourceMatrix::direct_channels() const {
    std::vector<Channel> out;
    for (std::size_t a = 0; a < attributes_.size(); ++a)
        for (const Operation& writer : operations_) {
            if (std::find(writer.modifies.begin(), writer.modifies.end(), a) ==
                writer.modifies.end())
                continue;
            for (const Operation& reader : operations_) {
                if (reader.name == writer.name) continue;
                if (std::find(reader.reads.begin(), reader.reads.end(), a) ==
                    reader.reads.end())
                    continue;
                out.push_back({attributes_[a], writer.name, reader.name, false});
            }
        }
    return out;
}

std::vector<std::vector<bool>> SharedResourceMatrix::flow_closure() const {
    const std::size_t n = attributes_.size();
    std::vector<std::vector<bool>> flow(n, std::vector<bool>(n, false));
    for (std::size_t a = 0; a < n; ++a) flow[a][a] = true;
    // Direct flows: an operation reading a and modifying b carries a -> b.
    for (const Operation& op : operations_)
        for (std::size_t a : op.reads)
            for (std::size_t b : op.modifies) flow[a][b] = true;
    // Warshall closure.
    for (std::size_t k = 0; k < n; ++k)
        for (std::size_t i = 0; i < n; ++i) {
            if (!flow[i][k]) continue;
            for (std::size_t j = 0; j < n; ++j)
                if (flow[k][j]) flow[i][j] = true;
        }
    return flow;
}

std::vector<SharedResourceMatrix::Channel> SharedResourceMatrix::all_channels() const {
    const auto flow = flow_closure();
    std::vector<Channel> out;
    for (std::size_t a = 0; a < attributes_.size(); ++a) {
        for (const Operation& writer : operations_) {
            if (std::find(writer.modifies.begin(), writer.modifies.end(), a) ==
                writer.modifies.end())
                continue;
            for (const Operation& reader : operations_) {
                if (reader.name == writer.name) continue;
                // The reader senses `a` if it reads any attribute b that `a`
                // flows into (b == a is the direct case).
                bool direct = false, indirect = false;
                for (std::size_t b : reader.reads) {
                    if (b == a)
                        direct = true;
                    else if (flow[a][b])
                        indirect = true;
                }
                if (direct)
                    out.push_back({attributes_[a], writer.name, reader.name, false});
                else if (indirect)
                    out.push_back({attributes_[a], writer.name, reader.name, true});
            }
        }
    }
    return out;
}

}  // namespace ccap::estimate
