#include "ccap/estimate/trace_io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace ccap::estimate {

namespace {

constexpr std::string_view kFramingPrefix = "ccap-trace v1 count=";

}  // namespace

std::vector<std::uint32_t> read_trace(std::istream& in) {
    std::vector<std::uint32_t> trace;
    std::string line;
    std::size_t line_no = 0;
    std::uint64_t declared = 0;
    bool framed = false;
    while (std::getline(in, line)) {
        ++line_no;
        // Trim whitespace.
        const auto begin = line.find_first_not_of(" \t\r");
        if (begin == std::string::npos) continue;
        const auto end = line.find_last_not_of(" \t\r");
        const std::string_view body(line.data() + begin, end - begin + 1);
        if (body.front() == '#') {
            // Framing header written by write_trace: declares the symbol
            // count so truncation is detectable.
            auto rest = body.substr(1);
            const auto ws = rest.find_first_not_of(" \t");
            if (ws != std::string_view::npos) rest = rest.substr(ws);
            if (rest.starts_with(kFramingPrefix)) {
                const auto num = rest.substr(kFramingPrefix.size());
                const auto [ptr, ec] =
                    std::from_chars(num.data(), num.data() + num.size(), declared);
                if (ec != std::errc{} || ptr != num.data() + num.size()) {
                    std::ostringstream msg;
                    msg << "trace framing header unparsable on line " << line_no << ": '"
                        << body << "'";
                    throw TraceIoError(TraceError::malformed, msg.str());
                }
                framed = true;
            }
            continue;
        }
        std::uint32_t value = 0;
        const auto [ptr, ec] = std::from_chars(body.data(), body.data() + body.size(), value);
        if (ec != std::errc{} || ptr != body.data() + body.size()) {
            std::ostringstream msg;
            msg << "trace parse error on line " << line_no << ": '" << body << "'";
            throw TraceIoError(TraceError::malformed, msg.str());
        }
        trace.push_back(value);
    }
    if (framed && trace.size() != declared) {
        std::ostringstream msg;
        msg << "framing header declares " << declared << " symbols but the file holds "
            << trace.size();
        throw TraceIoError(TraceError::truncated, msg.str());
    }
    return trace;
}

std::vector<std::uint32_t> read_trace_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw TraceIoError(TraceError::unreadable, "cannot open trace file: " + path);
    return read_trace(in);
}

void write_trace(std::ostream& out, std::span<const std::uint32_t> trace,
                 const std::string& comment) {
    if (!comment.empty()) out << "# " << comment << "\n";
    out << "# " << kFramingPrefix << trace.size() << "\n";
    for (std::uint32_t s : trace) out << s << "\n";
}

void write_trace_file(const std::string& path, std::span<const std::uint32_t> trace,
                      const std::string& comment) {
    std::ofstream out(path);
    if (!out)
        throw TraceIoError(TraceError::unreadable, "cannot create trace file: " + path);
    write_trace(out, trace, comment);
    if (!out)
        throw TraceIoError(TraceError::unreadable, "error writing trace file: " + path);
}

}  // namespace ccap::estimate
