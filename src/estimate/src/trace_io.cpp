#include "ccap/estimate/trace_io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ccap::estimate {

std::vector<std::uint32_t> read_trace(std::istream& in) {
    std::vector<std::uint32_t> trace;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        // Trim whitespace.
        const auto begin = line.find_first_not_of(" \t\r");
        if (begin == std::string::npos) continue;
        const auto end = line.find_last_not_of(" \t\r");
        const std::string_view body(line.data() + begin, end - begin + 1);
        if (body.front() == '#') continue;
        std::uint32_t value = 0;
        const auto [ptr, ec] = std::from_chars(body.data(), body.data() + body.size(), value);
        if (ec != std::errc{} || ptr != body.data() + body.size()) {
            std::ostringstream msg;
            msg << "trace parse error on line " << line_no << ": '" << body << "'";
            throw std::runtime_error(msg.str());
        }
        trace.push_back(value);
    }
    return trace;
}

std::vector<std::uint32_t> read_trace_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open trace file: " + path);
    return read_trace(in);
}

void write_trace(std::ostream& out, std::span<const std::uint32_t> trace,
                 const std::string& comment) {
    if (!comment.empty()) out << "# " << comment << "\n";
    for (std::uint32_t s : trace) out << s << "\n";
}

void write_trace_file(const std::string& path, std::span<const std::uint32_t> trace,
                      const std::string& comment) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot create trace file: " + path);
    write_trace(out, trace, comment);
    if (!out) throw std::runtime_error("error writing trace file: " + path);
}

}  // namespace ccap::estimate
