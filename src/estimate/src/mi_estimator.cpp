#include "ccap/estimate/mi_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace ccap::estimate {
namespace {

double xlog2x(double v) { return v > 0.0 ? v * std::log2(v) : 0.0; }

struct Counted {
    double entropy = 0.0;      // plug-in entropy
    std::size_t support = 0;   // number of nonzero cells
};

/// Plug-in entropy from a flat key vector: sort, then accumulate over equal
/// runs. Runs appear in ascending key order — the same iteration order as
/// the std::map this replaces — so the entropy sum is bit-identical while
/// the per-sample node allocations are gone.
template <typename Key>
Counted entropy_of_keys(std::vector<Key>& keys, std::size_t n) {
    std::sort(keys.begin(), keys.end());
    Counted out;
    for (std::size_t i = 0; i < keys.size();) {
        std::size_t j = i + 1;
        while (j < keys.size() && keys[j] == keys[i]) ++j;
        const double p = static_cast<double>(j - i) / static_cast<double>(n);
        out.entropy -= xlog2x(p);
        ++out.support;
        i = j;
    }
    return out;
}

}  // namespace

MiResult estimate_mutual_information(std::span<const std::uint32_t> x,
                                     std::span<const std::uint32_t> y) {
    if (x.size() != y.size())
        throw std::invalid_argument("estimate_mutual_information: length mismatch");
    if (x.empty()) throw std::invalid_argument("estimate_mutual_information: empty samples");
    const std::size_t n = x.size();

    std::vector<std::uint32_t> kx(x.begin(), x.end());
    std::vector<std::uint32_t> ky(y.begin(), y.end());
    std::vector<std::uint64_t> kxy;
    kxy.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        kxy.push_back((static_cast<std::uint64_t>(x[i]) << 32) | y[i]);
    const Counted hx = entropy_of_keys(kx, n);
    const Counted hy = entropy_of_keys(ky, n);
    const Counted hxy = entropy_of_keys(kxy, n);

    MiResult res;
    res.samples = n;
    res.plug_in = std::max(0.0, hx.entropy + hy.entropy - hxy.entropy);
    // Miller-Madow: H_mm = H_plug + (support-1)/(2n ln 2) per entropy term.
    const double corr = 1.0 / (2.0 * static_cast<double>(n) * std::log(2.0));
    const double hx_mm = hx.entropy + corr * static_cast<double>(hx.support - 1);
    const double hy_mm = hy.entropy + corr * static_cast<double>(hy.support - 1);
    const double hxy_mm = hxy.entropy + corr * static_cast<double>(hxy.support - 1);
    res.miller_madow = std::max(0.0, hx_mm + hy_mm - hxy_mm);
    return res;
}

MiResult estimate_entropy(std::span<const std::uint32_t> x) {
    if (x.empty()) throw std::invalid_argument("estimate_entropy: empty samples");
    std::vector<std::uint32_t> kx(x.begin(), x.end());
    const Counted hx = entropy_of_keys(kx, x.size());
    MiResult res;
    res.samples = x.size();
    res.plug_in = hx.entropy;
    res.miller_madow = hx.entropy + static_cast<double>(hx.support - 1) /
                                        (2.0 * static_cast<double>(x.size()) * std::log(2.0));
    return res;
}

}  // namespace ccap::estimate
