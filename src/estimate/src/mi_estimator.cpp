#include "ccap/estimate/mi_estimator.hpp"

#include <cmath>
#include <map>
#include <stdexcept>

namespace ccap::estimate {
namespace {

double xlog2x(double v) { return v > 0.0 ? v * std::log2(v) : 0.0; }

struct Counted {
    double entropy = 0.0;      // plug-in entropy
    std::size_t support = 0;   // number of nonzero cells
};

template <typename Key>
Counted entropy_of_counts(const std::map<Key, std::size_t>& counts, std::size_t n) {
    Counted out;
    for (const auto& [key, c] : counts) {
        (void)key;
        const double p = static_cast<double>(c) / static_cast<double>(n);
        out.entropy -= xlog2x(p);
        ++out.support;
    }
    return out;
}

}  // namespace

MiResult estimate_mutual_information(std::span<const std::uint32_t> x,
                                     std::span<const std::uint32_t> y) {
    if (x.size() != y.size())
        throw std::invalid_argument("estimate_mutual_information: length mismatch");
    if (x.empty()) throw std::invalid_argument("estimate_mutual_information: empty samples");
    const std::size_t n = x.size();

    std::map<std::uint32_t, std::size_t> cx, cy;
    std::map<std::uint64_t, std::size_t> cxy;
    for (std::size_t i = 0; i < n; ++i) {
        ++cx[x[i]];
        ++cy[y[i]];
        ++cxy[(static_cast<std::uint64_t>(x[i]) << 32) | y[i]];
    }
    const Counted hx = entropy_of_counts(cx, n);
    const Counted hy = entropy_of_counts(cy, n);
    const Counted hxy = entropy_of_counts(cxy, n);

    MiResult res;
    res.samples = n;
    res.plug_in = std::max(0.0, hx.entropy + hy.entropy - hxy.entropy);
    // Miller-Madow: H_mm = H_plug + (support-1)/(2n ln 2) per entropy term.
    const double corr = 1.0 / (2.0 * static_cast<double>(n) * std::log(2.0));
    const double hx_mm = hx.entropy + corr * static_cast<double>(hx.support - 1);
    const double hy_mm = hy.entropy + corr * static_cast<double>(hy.support - 1);
    const double hxy_mm = hxy.entropy + corr * static_cast<double>(hxy.support - 1);
    res.miller_madow = std::max(0.0, hx_mm + hy_mm - hxy_mm);
    return res;
}

MiResult estimate_entropy(std::span<const std::uint32_t> x) {
    if (x.empty()) throw std::invalid_argument("estimate_entropy: empty samples");
    std::map<std::uint32_t, std::size_t> cx;
    for (std::uint32_t v : x) ++cx[v];
    const Counted hx = entropy_of_counts(cx, x.size());
    MiResult res;
    res.samples = x.size();
    res.plug_in = hx.entropy;
    res.miller_madow = hx.entropy + static_cast<double>(hx.support - 1) /
                                        (2.0 * static_cast<double>(x.size()) * std::log(2.0));
    return res;
}

}  // namespace ccap::estimate
