#include "ccap/estimate/analyzer.hpp"

#include <algorithm>
#include <stdexcept>

#include "ccap/info/entropy.hpp"

namespace ccap::estimate {

const char* severity_name(Severity s) noexcept {
    switch (s) {
        case Severity::negligible: return "negligible";
        case Severity::marginal: return "marginal";
        case Severity::significant: return "significant";
        case Severity::severe: return "severe";
    }
    return "unknown";
}

Severity classify_bandwidth(double bits_per_second) noexcept {
    if (bits_per_second >= 100.0) return Severity::severe;
    if (bits_per_second >= 1.0) return Severity::significant;
    if (bits_per_second >= 0.1) return Severity::marginal;
    return Severity::negligible;
}

namespace {

AnalysisReport finish_report(const core::DiChannelParams& params, double uses_per_second,
                             AnalysisReport report) {
    params.validate();
    if (!(uses_per_second > 0.0))
        throw std::domain_error("analyze: uses_per_second must be > 0");
    // Traditional (synchronous) estimate: the channel is an M-ary symmetric
    // DMC at the substitution rate; deletions/insertions are invisible to
    // this model — exactly the overestimate the paper corrects.
    const double n = static_cast<double>(params.bits_per_symbol);
    report.traditional_bits_per_use =
        params.p_s <= 0.0
            ? n
            : std::max(0.0, info::mary_symmetric_capacity(params.p_s, params.alphabet()));
    report.band_bits_per_use = core::capacity_band(params);
    report.degraded_bits_per_use =
        core::degraded_capacity(report.traditional_bits_per_use, params);
    report.degraded_bits_per_second = report.degraded_bits_per_use * uses_per_second;
    report.severity = classify_bandwidth(report.degraded_bits_per_second);
    return report;
}

}  // namespace

AnalysisReport analyze_traces(std::span<const std::uint32_t> sent,
                              std::span<const std::uint32_t> received,
                              const AnalyzerConfig& config) {
    AnalysisReport report;
    // The likelihood-based estimators need byte-sized symbols; wider
    // alphabets fall back to alignment.
    const bool likelihood_ok = config.bits_per_symbol <= 8;
    switch (config.estimator_kind) {
        case EstimatorKind::mle:
            report.params = likelihood_ok
                                ? estimate_params_mle(sent, received, config.bits_per_symbol,
                                                      config.estimator)
                                : estimate_params(sent, received, config.estimator);
            break;
        case EstimatorKind::em:
            report.params = likelihood_ok
                                ? estimate_params_em(sent, received, config.bits_per_symbol,
                                                     config.estimator)
                                : estimate_params(sent, received, config.estimator);
            break;
        case EstimatorKind::alignment:
            report.params = estimate_params(sent, received, config.estimator);
            break;
    }
    const core::DiChannelParams params = report.params.params(config.bits_per_symbol);
    return finish_report(params, config.uses_per_second, std::move(report));
}

AnalysisReport analyze_params(const core::DiChannelParams& params, double uses_per_second) {
    AnalysisReport report;
    report.params.p_d = {params.p_d, params.p_d, params.p_d};
    report.params.p_i = {params.p_i, params.p_i, params.p_i};
    report.params.p_s = {params.p_s, params.p_s, params.p_s};
    return finish_report(params, uses_per_second, std::move(report));
}

void InformalTimings::validate() const {
    if (!(bits_per_transfer > 0.0))
        throw std::domain_error("InformalTimings: bits_per_transfer must be > 0");
    if (sender_op_seconds < 0.0 || receiver_op_seconds < 0.0 || context_switch_seconds < 0.0)
        throw std::domain_error("InformalTimings: negative timing");
    if (sender_op_seconds + receiver_op_seconds + context_switch_seconds <= 0.0)
        throw std::domain_error("InformalTimings: cycle time must be > 0");
}

double informal_bandwidth(const InformalTimings& timings) {
    timings.validate();
    const double cycle = timings.sender_op_seconds + timings.receiver_op_seconds +
                         2.0 * timings.context_switch_seconds;
    return timings.bits_per_transfer / cycle;
}

double corrected_informal_bandwidth(const InformalTimings& timings,
                                    const core::DiChannelParams& params) {
    return core::degraded_capacity(informal_bandwidth(timings), params);
}

}  // namespace ccap::estimate
