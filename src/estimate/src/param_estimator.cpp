#include "ccap/estimate/param_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ccap/info/drift_hmm.hpp"
#include "ccap/util/rng.hpp"
#include "ccap/util/solvers.hpp"

namespace ccap::estimate {
namespace {

struct BlockCounts {
    std::size_t matches = 0;
    std::size_t substitutions = 0;
    std::size_t deletions = 0;
    std::size_t insertions = 0;

    [[nodiscard]] std::size_t uses() const noexcept {
        return matches + substitutions + deletions + insertions;
    }
};

BlockCounts counts_of(const Alignment& a) {
    BlockCounts c;
    c.matches = a.count(EditOp::match);
    c.substitutions = a.count(EditOp::substitution);
    c.deletions = a.count(EditOp::deletion);
    c.insertions = a.count(EditOp::insertion);
    return c;
}

/// End-free alignment: align all of `block` against a *prefix* of `window`,
/// choosing the prefix length that minimizes the distance (ties towards the
/// drift-neutral length |block|). Returns the alignment and how many window
/// symbols were consumed.
std::pair<Alignment, std::size_t> align_end_free(std::span<const std::uint32_t> block,
                                                 std::span<const std::uint32_t> window) {
    const std::size_t n = block.size();
    const std::size_t m = window.size();
    std::vector<std::vector<std::uint32_t>> dp(n + 1, std::vector<std::uint32_t>(m + 1, 0));
    for (std::size_t i = 0; i <= n; ++i) dp[i][0] = static_cast<std::uint32_t>(i);
    for (std::size_t j = 0; j <= m; ++j) dp[0][j] = static_cast<std::uint32_t>(j);
    for (std::size_t i = 1; i <= n; ++i)
        for (std::size_t j = 1; j <= m; ++j) {
            const std::uint32_t sub =
                dp[i - 1][j - 1] + (block[i - 1] == window[j - 1] ? 0U : 1U);
            dp[i][j] = std::min({sub, dp[i - 1][j] + 1U, dp[i][j - 1] + 1U});
        }
    std::size_t best_j = 0;
    for (std::size_t j = 0; j <= m; ++j) {
        const bool better =
            dp[n][j] < dp[n][best_j] ||
            (dp[n][j] == dp[n][best_j] &&
             std::llabs(static_cast<long long>(j) - static_cast<long long>(n)) <
                 std::llabs(static_cast<long long>(best_j) - static_cast<long long>(n)));
        if (better) best_j = j;
    }

    Alignment out;
    out.distance = dp[n][best_j];
    std::size_t i = n, j = best_j;
    std::vector<EditStep> rev;
    while (i > 0 || j > 0) {
        if (i > 0 && j > 0) {
            const bool is_match = block[i - 1] == window[j - 1];
            if (dp[i - 1][j - 1] + (is_match ? 0U : 1U) == dp[i][j]) {
                rev.push_back({is_match ? EditOp::match : EditOp::substitution, i - 1, j - 1});
                --i;
                --j;
                continue;
            }
        }
        if (i > 0 && dp[i - 1][j] + 1U == dp[i][j]) {
            rev.push_back({EditOp::deletion, i - 1, 0});
            --i;
            continue;
        }
        rev.push_back({EditOp::insertion, 0, j - 1});
        --j;
    }
    out.steps.assign(rev.rbegin(), rev.rend());
    return {std::move(out), best_j};
}

ParamEstimate rates_from_blocks(std::span<const BlockCounts> blocks) {
    ParamEstimate est;
    std::size_t uses = 0, d = 0, ins = 0, s = 0, m = 0;
    for (const BlockCounts& b : blocks) {
        uses += b.uses();
        d += b.deletions;
        ins += b.insertions;
        s += b.substitutions;
        m += b.matches;
    }
    est.channel_uses = uses;
    est.blocks = blocks.size();
    if (uses > 0) {
        est.p_d.value = static_cast<double>(d) / static_cast<double>(uses);
        est.p_i.value = static_cast<double>(ins) / static_cast<double>(uses);
    }
    if (s + m > 0) est.p_s.value = static_cast<double>(s) / static_cast<double>(s + m);
    return est;
}

using SymbolBlock = std::pair<std::vector<std::uint8_t>, std::vector<std::uint8_t>>;

struct BlockSplit {
    std::vector<SymbolBlock> blocks;
    int max_diff = 1;  ///< max |received - sent| over blocks
};

/// Split the trace pair into (sent, received) byte-block pairs along
/// blockwise end-free alignment boundaries, capped for tractability.
/// Shorter blocks keep the drift lattice narrow (cost is linear in the
/// per-block drift range), independent of the alignment block length.
BlockSplit split_blocks(std::span<const std::uint32_t> sent,
                        std::span<const std::uint32_t> received, std::size_t block_len,
                        std::size_t max_symbols) {
    BlockSplit split;
    const std::size_t eff_block = std::min<std::size_t>(block_len, 256);
    std::size_t sent_pos = 0, recv_pos = 0, used = 0;
    while (sent_pos < sent.size() && used < max_symbols) {
        const std::size_t n = std::min(eff_block, sent.size() - sent_pos);
        const std::size_t slack = n / 2 + 32;
        const std::size_t w = std::min(n + slack, received.size() - recv_pos);
        auto [alignment, consumed] =
            align_end_free(sent.subspan(sent_pos, n), received.subspan(recv_pos, w));
        (void)alignment;
        SymbolBlock b;
        b.first.assign(sent.begin() + static_cast<std::ptrdiff_t>(sent_pos),
                       sent.begin() + static_cast<std::ptrdiff_t>(sent_pos + n));
        b.second.assign(received.begin() + static_cast<std::ptrdiff_t>(recv_pos),
                        received.begin() + static_cast<std::ptrdiff_t>(recv_pos + consumed));
        split.max_diff = std::max(
            split.max_diff, static_cast<int>(std::llabs(static_cast<long long>(consumed) -
                                                        static_cast<long long>(n))));
        used += n;
        sent_pos += n;
        recv_pos += consumed;
        split.blocks.push_back(std::move(b));
    }
    return split;
}

/// Keep the bootstrap CI *widths* from the alignment pass, re-centred on a
/// refined point (the widths reflect sampling noise; the re-centring
/// removes the alignment bias).
void recenter_rate(RateEstimate& rate, double new_value) {
    const double half = std::max(new_value * 0.05, (rate.ci_high - rate.ci_low) / 2.0);
    rate.value = new_value;
    rate.ci_low = std::max(0.0, new_value - half);
    rate.ci_high = new_value + half;
}

void check_symbol_range(std::span<const std::uint32_t> sent,
                        std::span<const std::uint32_t> received, unsigned bits_per_symbol,
                        const char* who) {
    if (bits_per_symbol == 0 || bits_per_symbol > 8)
        throw std::invalid_argument(std::string(who) + ": bits_per_symbol must be in [1,8]");
    const unsigned alphabet = 1U << bits_per_symbol;
    for (std::uint32_t s : sent)
        if (s >= alphabet) throw std::out_of_range(std::string(who) + ": sent symbol");
    for (std::uint32_t s : received)
        if (s >= alphabet) throw std::out_of_range(std::string(who) + ": received symbol");
}

}  // namespace

ParamEstimate rates_from_alignment(const Alignment& alignment) {
    const BlockCounts c = counts_of(alignment);
    return rates_from_blocks(std::span<const BlockCounts>(&c, 1));
}

WindowEstimate estimate_window(std::span<const std::uint32_t> sent,
                               std::span<const std::uint32_t> received) {
    WindowEstimate out;
    if (sent.empty()) {
        out.estimate = ParamEstimate{};
        return out;
    }
    auto [alignment, consumed] = align_end_free(sent, received);
    out.estimate = rates_from_alignment(alignment);
    out.received_consumed = consumed;
    return out;
}

ParamEstimate estimate_params(std::span<const std::uint32_t> sent,
                              std::span<const std::uint32_t> received,
                              const EstimatorOptions& options) {
    if (options.block_len == 0) throw std::invalid_argument("estimate_params: block_len == 0");
    std::vector<BlockCounts> blocks;
    std::size_t sent_pos = 0, recv_pos = 0;
    while (sent_pos < sent.size()) {
        const std::size_t n = std::min(options.block_len, sent.size() - sent_pos);
        // Window with slack for drift; generous but bounded.
        const std::size_t slack = n / 2 + 32;
        const std::size_t w = std::min(n + slack, received.size() - recv_pos);
        auto [alignment, consumed] =
            align_end_free(sent.subspan(sent_pos, n), received.subspan(recv_pos, w));
        blocks.push_back(counts_of(alignment));
        sent_pos += n;
        recv_pos += consumed;
    }
    // Anything left in the received trace is trailing insertions.
    if (recv_pos < received.size()) {
        BlockCounts tail;
        tail.insertions = received.size() - recv_pos;
        blocks.push_back(tail);
    }
    if (blocks.empty()) {
        // Both traces empty: all-zero estimate.
        return ParamEstimate{};
    }

    ParamEstimate est = rates_from_blocks(blocks);

    // Blocked bootstrap for confidence intervals.
    if (options.bootstrap_rounds > 1 && blocks.size() > 1) {
        util::Rng rng(options.bootstrap_seed);
        std::vector<double> pd_samples, pi_samples, ps_samples;
        pd_samples.reserve(options.bootstrap_rounds);
        pi_samples.reserve(options.bootstrap_rounds);
        ps_samples.reserve(options.bootstrap_rounds);
        std::vector<BlockCounts> resampled(blocks.size());
        for (std::size_t round = 0; round < options.bootstrap_rounds; ++round) {
            for (auto& b : resampled) b = blocks[rng.uniform_below(blocks.size())];
            const ParamEstimate r = rates_from_blocks(resampled);
            pd_samples.push_back(r.p_d.value);
            pi_samples.push_back(r.p_i.value);
            ps_samples.push_back(r.p_s.value);
        }
        const auto fill_ci = [](RateEstimate& rate, std::vector<double>& samples) {
            std::sort(samples.begin(), samples.end());
            const auto at = [&](double pct) {
                const auto idx = static_cast<std::size_t>(pct * (samples.size() - 1));
                return samples[idx];
            };
            rate.ci_low = at(0.025);
            rate.ci_high = at(0.975);
        };
        fill_ci(est.p_d, pd_samples);
        fill_ci(est.p_i, pi_samples);
        fill_ci(est.p_s, ps_samples);
    } else {
        est.p_d.ci_low = est.p_d.ci_high = est.p_d.value;
        est.p_i.ci_low = est.p_i.ci_high = est.p_i.value;
        est.p_s.ci_low = est.p_s.ci_high = est.p_s.value;
    }
    return est;
}

ParamEstimate estimate_params_mle(std::span<const std::uint32_t> sent,
                                  std::span<const std::uint32_t> received,
                                  unsigned bits_per_symbol, const EstimatorOptions& options) {
    check_symbol_range(sent, received, bits_per_symbol, "estimate_params_mle");
    if (options.block_len == 0)
        throw std::invalid_argument("estimate_params_mle: block_len == 0");
    const unsigned alphabet = 1U << bits_per_symbol;

    // Seed (and CI shape) from the fast alignment estimator.
    ParamEstimate est = estimate_params(sent, received, options);
    if (sent.empty() && received.empty()) return est;

    const BlockSplit split = split_blocks(sent, received, options.block_len, 2048);
    if (split.blocks.empty()) {
        // Nothing was sent; the alignment estimate (pure insertions) stands.
        return est;
    }

    // The lattice clamp must cover every block's end-to-end drift (plus
    // in-block excursions).
    const int max_drift = split.max_diff + 32;
    const auto log_likelihood = [&](double pd, double pi, double ps) {
        if (pd < 0.0 || pi < 0.0 || ps < 0.0 || ps > 1.0 || pd + pi > 0.9) return -1e18;
        info::DriftParams dp;
        dp.p_d = pd;
        dp.p_i = pi;
        dp.p_s = ps;
        dp.alphabet = alphabet;
        dp.max_drift = max_drift;
        dp.max_insert_run = 10;
        const info::DriftHmm hmm(dp);
        double total = 0.0;
        for (const SymbolBlock& b : split.blocks) {
            const double ll = hmm.log2_likelihood(b.first, b.second);
            // A block outside the truncation gets a heavy — but finite —
            // penalty so the search surface stays informative.
            total += std::isfinite(ll) ? ll : -1e6;
        }
        return total;
    };

    double pd = std::clamp(est.p_d.value, 0.001, 0.6);
    double pi = std::clamp(est.p_i.value, 0.001, 0.6);
    double ps = std::clamp(est.p_s.value, 0.0, 0.5);
    for (int sweep = 0; sweep < 2; ++sweep) {
        pd = util::golden_max([&](double x) { return log_likelihood(x, pi, ps); }, 0.0,
                              std::min(0.85, 0.9 - pi), 2e-3)
                 .x;
        pi = util::golden_max([&](double x) { return log_likelihood(pd, x, ps); }, 0.0,
                              std::min(0.85, 0.9 - pd), 2e-3)
                 .x;
        ps = util::golden_max([&](double x) { return log_likelihood(pd, pi, x); }, 0.0, 0.6,
                              2e-3)
                 .x;
    }

    recenter_rate(est.p_d, pd);
    recenter_rate(est.p_i, pi);
    recenter_rate(est.p_s, ps);
    return est;
}

ParamEstimate estimate_params_em(std::span<const std::uint32_t> sent,
                                 std::span<const std::uint32_t> received,
                                 unsigned bits_per_symbol, const EstimatorOptions& options) {
    check_symbol_range(sent, received, bits_per_symbol, "estimate_params_em");
    if (options.block_len == 0)
        throw std::invalid_argument("estimate_params_em: block_len == 0");
    const unsigned alphabet = 1U << bits_per_symbol;

    ParamEstimate est = estimate_params(sent, received, options);
    if (sent.empty() && received.empty()) return est;
    const BlockSplit split = split_blocks(sent, received, options.block_len, 4096);
    if (split.blocks.empty()) return est;
    const int max_drift = split.max_diff + 32;

    // EM needs strictly interior starting probabilities to keep every
    // event sequence representable.
    double pd = std::clamp(est.p_d.value, 0.01, 0.6);
    double pi = std::clamp(est.p_i.value, 0.01, 0.6);
    double ps = std::clamp(est.p_s.value, 0.005, 0.5);
    double prev_ll = -1e300;
    for (int iter = 0; iter < 60; ++iter) {
        info::DriftParams dp;
        dp.p_d = pd;
        dp.p_i = pi;
        dp.p_s = ps;
        dp.alphabet = alphabet;
        dp.max_drift = max_drift;
        dp.max_insert_run = 10;
        const info::DriftHmm hmm(dp);

        double e_del = 0.0, e_ins = 0.0, e_tx = 0.0, e_sub = 0.0, ll = 0.0;
        for (const SymbolBlock& b : split.blocks) {
            const auto ev = hmm.expected_events(b.first, b.second);
            if (!std::isfinite(ev.log2_likelihood)) continue;  // truncated-out block
            e_del += ev.deletions;
            e_ins += ev.insertions;
            e_tx += ev.transmissions;
            e_sub += ev.substitutions;
            ll += ev.log2_likelihood;
        }
        const double uses = e_del + e_ins + e_tx;
        if (uses <= 0.0) break;
        // M-step (the single per-block stop event is O(1/n) and ignored).
        const double new_pd = e_del / uses;
        const double new_pi = e_ins / uses;
        const double new_ps = e_tx > 0.0 ? e_sub / e_tx : 0.0;
        const double delta = std::abs(new_pd - pd) + std::abs(new_pi - pi) +
                             std::abs(new_ps - ps);
        pd = new_pd;
        pi = new_pi;
        ps = new_ps;
        if (delta < 1e-5 || (iter > 0 && ll < prev_ll + 1e-9)) break;
        prev_ll = ll;
    }

    recenter_rate(est.p_d, pd);
    recenter_rate(est.p_i, pi);
    recenter_rate(est.p_s, ps);
    return est;
}

}  // namespace ccap::estimate
