#include "ccap/estimate/changepoint.hpp"

#include <cmath>
#include <stdexcept>

namespace ccap::estimate {

WindowedRates windowed_rates(std::span<const std::uint32_t> sent,
                             std::span<const std::uint32_t> received,
                             std::size_t window_len) {
    if (window_len == 0) throw std::invalid_argument("windowed_rates: window_len == 0");
    WindowedRates out;
    out.window_len = window_len;
    std::size_t sent_pos = 0, recv_pos = 0;
    while (sent_pos < sent.size()) {
        const std::size_t n = std::min(window_len, sent.size() - sent_pos);
        // End-free alignment against a slack-padded received span; the
        // window's own consumption advances the cursor.
        const std::size_t slack = n / 2 + 32;
        const std::size_t avail = received.size() - recv_pos;
        const std::size_t w = std::min(n + slack, avail);
        const WindowEstimate win =
            estimate_window(sent.subspan(sent_pos, n), received.subspan(recv_pos, w));
        out.p_d.push_back(win.estimate.p_d.value);
        out.p_i.push_back(win.estimate.p_i.value);
        out.p_s.push_back(win.estimate.p_s.value);
        recv_pos = std::min(received.size(), recv_pos + win.received_consumed);
        sent_pos += n;
    }
    return out;
}

std::optional<ChangePoint> detect_rate_change(std::span<const double> series,
                                              double z_threshold) {
    const std::size_t n = series.size();
    if (n < 4) return std::nullopt;  // need >= 2 windows per side

    // Prefix sums for O(n) candidate evaluation.
    std::vector<double> prefix(n + 1, 0.0), prefix_sq(n + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        prefix[i + 1] = prefix[i] + series[i];
        prefix_sq[i + 1] = prefix_sq[i] + series[i] * series[i];
    }
    const auto segment_stats = [&](std::size_t lo, std::size_t hi) {  // [lo, hi)
        const double cnt = static_cast<double>(hi - lo);
        const double mean = (prefix[hi] - prefix[lo]) / cnt;
        const double var =
            std::max(0.0, (prefix_sq[hi] - prefix_sq[lo]) / cnt - mean * mean);
        return std::pair{mean, var};
    };

    std::optional<ChangePoint> best;
    for (std::size_t split = 2; split + 2 <= n; ++split) {
        const auto [m1, v1] = segment_stats(0, split);
        const auto [m2, v2] = segment_stats(split, n);
        const double n1 = static_cast<double>(split);
        const double n2 = static_cast<double>(n - split);
        // Pooled standard error with a floor so constant series don't
        // produce infinite z-scores from numerical dust.
        const double se = std::sqrt(v1 / n1 + v2 / n2) + 1e-9;
        const double z = std::abs(m2 - m1) / se;
        if (z >= z_threshold && (!best || z > best->z_score))
            best = ChangePoint{split, m1, m2, z};
    }
    return best;
}

}  // namespace ccap::estimate
