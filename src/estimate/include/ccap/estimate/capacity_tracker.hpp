// Online capacity tracker: streaming estimation that survives
// non-stationary faults.
//
// The offline pipeline (analyzer.hpp) assumes the channel's parameters hold
// for the whole trace; under the fault profiles of core/fault_injection.hpp
// that assumption fails and a single batch estimate averages incompatible
// regimes into a number that is wrong for every one of them. The tracker
// instead ingests the observation stream one fixed-size window at a time
// and maintains:
//
//   * a per-window parameter estimate (estimate_window, end-free alignment)
//     mapped through a memoized capacity grid (info/capacity_cache.hpp) —
//     the same adaptive Monte-Carlo machinery as the offline path, so a
//     stationary stream reproduces the batch estimate bit for bit;
//   * an exponentially smoothed capacity estimate with propagated
//     uncertainty: var <- (1-a)^2 var + a^2 sem^2, reported as a 1.96-sigma
//     bound plus the grid quantization margin;
//   * a trendline drift detector (OLS slope of recent window P_d values,
//     flagged when the slope exceeds a threshold for `drift_sustain`
//     consecutive windows — the WebRTC trendline idiom);
//   * a change-point reset: when the window P_d jumps more than
//     `resync_jump` away from the smoothed P_d, the smoothed state is
//     stale by certificate and is discarded (status `resync`), re-pinning
//     the estimate to the current window;
//   * an AIMD served-rate controller: additive increase toward
//     headroom * smoothed capacity while tracking, multiplicative back-off
//     (beta) on drift, resync and degraded windows.
//
// Robustness contract: no NaN ever escapes a TrackerUpdate. Windows that
// cannot produce a usable estimate (empty, non-finite rates, parameters
// outside the tracked grid — e.g. an all-deleted window estimating
// P_d = 1) degrade *explicitly*: status `degraded`, the last smoothed value
// held and flagged stale via `stale_windows`, served rate backed off.
//
// Determinism contract: every TrackerUpdate is a pure function of (config,
// ingested chunks). The cache's node purity makes prefetch warm-up
// (`ensure` over predicted grid nodes) a no-op on values, so outputs are
// bit-identical at any `threads` setting; checkpoints serialize state as
// hex-floats so a resumed tracker continues the uninterrupted run bit for
// bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "ccap/core/stream_source.hpp"
#include "ccap/estimate/param_estimator.hpp"
#include "ccap/info/capacity_cache.hpp"
#include "ccap/util/checkpoint_io.hpp"

namespace ccap::estimate {

enum class TrackerStatus : std::uint8_t {
    warmup,    ///< inside the first warmup_windows windows
    tracking,  ///< steady state: smoothed estimate is live
    drifting,  ///< sustained P_d trend detected; back-off engaged
    resync,    ///< change-point reset: smoothed state discarded this window
    degraded,  ///< window unusable; holding stale state, backing off
};

/// "warmup" / "tracking" / "drifting" / "resync" / "degraded".
[[nodiscard]] const char* tracker_status_name(TrackerStatus status) noexcept;

struct TrackerConfig {
    /// Sent symbols per window. The tracker accepts whatever chunk framing
    /// the source emits; this value drives TraceChunkSource carving and is
    /// part of the config fingerprint (a checkpoint from another framing
    /// must not resume).
    std::size_t window_len = 2000;
    double smoothing = 0.3;          ///< EWMA coefficient a in (0, 1]
    std::size_t trend_window = 8;    ///< windows in the OLS trendline (>= 3)
    double drift_slope = 0.004;      ///< |dP_d/dwindow| flagging drift
    std::size_t drift_sustain = 3;   ///< consecutive flags before `drifting`
    double resync_jump = 0.05;       ///< |window P_d - smoothed P_d| reset threshold
    std::size_t warmup_windows = 2;
    /// The grid spans (P_d, P_i) only; substitution rate is pinned at
    /// cache.base.p_s. A window whose estimated p_s strays further than
    /// this from the base is not described by any node (stuck-at faults, a
    /// received stream that is substitution noise) and degrades explicitly
    /// instead of reporting a wrong node's capacity.
    double ps_tolerance = 0.1;
    double aimd_increase = 0.02;     ///< additive step, bits per use per window
    double aimd_beta = 0.85;         ///< multiplicative back-off factor in (0, 1)
    double headroom = 0.95;          ///< served target fraction of smoothed capacity
    /// Grid nodes to warm ahead along the drift direction after each
    /// window (cache.ensure over predicted keys). Purely a latency
    /// optimization: node values are pure, so outputs are unchanged.
    std::size_t prefetch = 0;
    /// Worker threads for prefetch warm-up only. Never affects outputs.
    unsigned threads = 1;
    /// The capacity grid every window estimate is evaluated on. Shares the
    /// offline cache's determinism contract: node values are pure functions
    /// of (config, key), which is what makes a stationary stream reproduce
    /// the batch estimate exactly.
    info::CapacityCache::Config cache;

    /// Throws std::domain_error / std::invalid_argument when malformed.
    void validate() const;

    /// Hash of every output-affecting field (perf knobs — threads,
    /// prefetch, cache sharding/enabled — excluded). Stamped into
    /// checkpoints; resume refuses a fingerprint mismatch.
    [[nodiscard]] std::uint64_t fingerprint() const noexcept;
};

/// One window's tracker output. Every field is finite by contract — the
/// pathological-input tests feed NaN-inducing garbage and assert it.
/// Defaulted equality backs the bit-identity tests (thread invariance,
/// checkpoint resume, null-profile-vs-batch).
struct TrackerUpdate {
    std::uint64_t window = 0;
    TrackerStatus status = TrackerStatus::warmup;
    double p_d = 0.0;  ///< window parameter estimates (0 when unavailable)
    double p_i = 0.0;
    double p_s = 0.0;
    double window_capacity = 0.0;  ///< this window's node estimate, bits/use
    double window_sem = 0.0;
    double capacity = 0.0;  ///< smoothed estimate (held stale when degraded)
    double sem = 0.0;       ///< smoothed SEM, sqrt of the propagated variance
    double bound = 0.0;     ///< 1.96 * smoothed SEM + grid quantization margin
    double trend_slope = 0.0;  ///< OLS P_d slope per window over the trendline
    bool drift = false;        ///< trendline sustained past drift_sustain
    double served_rate = 0.0;  ///< AIMD-controlled rate offered to the sender
    std::uint64_t resyncs = 0;        ///< cumulative change-point resets
    std::uint64_t stale_windows = 0;  ///< consecutive degraded windows held
    std::size_t mc_blocks = 0;  ///< MC blocks backing window_capacity
    bool converged = false;     ///< node met its SEM target (false when degraded)

    bool operator==(const TrackerUpdate&) const = default;
};

class CapacityTracker {
public:
    explicit CapacityTracker(TrackerConfig cfg);

    [[nodiscard]] const TrackerConfig& config() const noexcept { return cfg_; }
    /// The backing grid cache (benches evaluate ground truth through it so
    /// tracker and truth share one quantization).
    [[nodiscard]] info::CapacityCache& cache() noexcept { return cache_; }

    /// Ingest one window and return its update (also retained as last()).
    TrackerUpdate ingest(const core::StreamChunk& chunk);

    [[nodiscard]] std::uint64_t windows() const noexcept { return windows_; }
    [[nodiscard]] const TrackerUpdate& last() const noexcept { return last_; }

    /// Serialize the full mutable state (hex-float doubles, config
    /// fingerprint). The grid cache is deliberately not serialized: node
    /// values are pure functions of (config, key) and rebuild identically.
    [[nodiscard]] util::Checkpoint checkpoint() const;

    /// Rebuild a tracker from a checkpoint. Throws util::CheckpointIoError
    /// (malformed) when the checkpoint's fingerprint does not match `cfg`
    /// or a state field is missing/mistyped. The resumed tracker's
    /// subsequent updates are bit-identical to the uninterrupted run's.
    [[nodiscard]] static CapacityTracker resume(TrackerConfig cfg,
                                                const util::Checkpoint& state);

private:
    TrackerUpdate degrade(const core::StreamChunk& chunk, const ParamEstimate* est);
    void push_trend(double pd);
    [[nodiscard]] double slope() const noexcept;
    [[nodiscard]] double bound() const noexcept;
    void prefetch_ahead(info::CapacityKey current, double pd, double pi, double slp);

    TrackerConfig cfg_;
    info::CapacityCache cache_;
    double quant_margin_ = 0.0;

    std::uint64_t windows_ = 0;
    bool have_smoothed_ = false;
    double ewma_cap_ = 0.0;
    double ewma_var_ = 0.0;
    double ewma_pd_ = 0.0;
    double ewma_pi_ = 0.0;
    std::vector<double> trend_;  ///< last <= trend_window window P_d values
    std::uint64_t drift_streak_ = 0;
    std::uint64_t resyncs_ = 0;
    std::uint64_t stale_streak_ = 0;
    double served_ = 0.0;
    TrackerUpdate last_;
};

/// Trace-file chunk source: carves a complete sent/received trace pair into
/// StreamChunks of window_len sent symbols, walking the received stream
/// with the same end-free alignment cursor as windowed_rates
/// (changepoint.hpp). The final window absorbs all remaining received
/// symbols, so trailing insertions are not dropped.
class TraceChunkSource final : public core::ChunkSource {
public:
    /// Throws std::invalid_argument when window_len == 0.
    TraceChunkSource(std::vector<std::uint32_t> sent,
                     std::vector<std::uint32_t> received, std::size_t window_len);

    [[nodiscard]] std::optional<core::StreamChunk> next() override;

private:
    std::vector<std::uint32_t> sent_;
    std::vector<std::uint32_t> received_;
    std::size_t window_len_;
    std::size_t sent_pos_ = 0;
    std::size_t recv_pos_ = 0;
    std::uint64_t index_ = 0;
};

}  // namespace ccap::estimate
