// Plain-text rendering of analysis results, shared by the examples and the
// bench harnesses so every binary reports in the same format.
#pragma once

#include <string>

#include "ccap/estimate/analyzer.hpp"

namespace ccap::estimate {

/// Multi-line human-readable report.
[[nodiscard]] std::string render_report(const AnalysisReport& report, const std::string& title);

/// One CSV-ish row: "p_d,p_i,p_s,traditional,lower,exact,upper,degraded,b/s,severity".
[[nodiscard]] std::string render_row(const AnalysisReport& report);

/// Header matching render_row.
[[nodiscard]] std::string render_row_header();

}  // namespace ccap::estimate
