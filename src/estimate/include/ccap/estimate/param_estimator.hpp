// Estimating (P_d, P_i, P_s) from sent/received traces.
//
// The paper's Section 4.3 recipe says: "for a given covert channel, one
// could first use traditional methods to estimate the physical capacity C.
// The probability of deletion P_d should then be estimated." This module is
// that estimation step: traces are aligned (blockwise, to stay near-linear)
// and the edit operations are converted to per-channel-use rates. Deletion
// and transmission events both consume a channel use; so do insertions —
// the rates are computed over uses = #sent + #insertions.
//
// A blocked bootstrap over alignment blocks gives confidence intervals.
#pragma once

#include <cstdint>
#include <span>

#include "ccap/core/channel_params.hpp"
#include "ccap/estimate/alignment.hpp"

namespace ccap::estimate {

struct RateEstimate {
    double value = 0.0;
    double ci_low = 0.0;   ///< 95% bootstrap CI
    double ci_high = 0.0;
};

struct ParamEstimate {
    RateEstimate p_d;
    RateEstimate p_i;
    RateEstimate p_s;  ///< substitution rate given transmission
    std::size_t channel_uses = 0;
    std::size_t blocks = 0;

    /// Point-estimate parameter set for the capacity formulas.
    [[nodiscard]] core::DiChannelParams params(unsigned bits_per_symbol) const {
        return {p_d.value, p_i.value, p_s.value, bits_per_symbol};
    }
};

struct EstimatorOptions {
    std::size_t block_len = 512;       ///< sent symbols per alignment block
    std::size_t bootstrap_rounds = 200;
    std::uint64_t bootstrap_seed = 99;
};

/// Estimate channel parameters from one sent/received trace pair.
/// Blockwise alignment resynchronizes greedily: each block of sent symbols
/// is aligned against a received window sized by the running drift.
[[nodiscard]] ParamEstimate estimate_params(std::span<const std::uint32_t> sent,
                                            std::span<const std::uint32_t> received,
                                            const EstimatorOptions& options = {});

/// Classify an alignment directly into per-use event rates (single block).
[[nodiscard]] ParamEstimate rates_from_alignment(const Alignment& alignment);

/// Single-window end-free estimate: align all of `sent` against the best
/// *prefix* of `received` (so a window inside a longer trace does not count
/// the rest of the stream as insertions) and report both the rates and how
/// many received symbols the window consumed — the cursor for the next
/// window. Used by windowed_rates (changepoint.hpp).
struct WindowEstimate {
    ParamEstimate estimate;
    std::size_t received_consumed = 0;
};
[[nodiscard]] WindowEstimate estimate_window(std::span<const std::uint32_t> sent,
                                             std::span<const std::uint32_t> received);

/// Maximum-likelihood parameter estimation over the drift HMM.
///
/// The alignment estimator above is fast but *biased*: minimum-edit-distance
/// alignment collapses nearby deletion+insertion pairs into substitutions
/// (cost 1 < 2), so P_d and P_i are under-counted and P_s over-counted when
/// both synchronization errors are present. This estimator instead
/// maximizes sum over blocks of log2 P(received | sent; P_d, P_i, P_s)
/// computed exactly by the drift lattice, via bounded coordinate descent
/// (golden-section per parameter) seeded from the alignment estimate.
/// Slower, but consistent; the analyzer uses it by default.
[[nodiscard]] ParamEstimate estimate_params_mle(std::span<const std::uint32_t> sent,
                                                std::span<const std::uint32_t> received,
                                                unsigned bits_per_symbol,
                                                const EstimatorOptions& options = {});

/// Baum-Welch (EM) parameter estimation over the drift HMM: alternate the
/// exact posterior expected event counts (DriftHmm::expected_events) with
/// closed-form M-steps P_d = E[D]/E[uses], P_i = E[I]/E[uses],
/// P_s = E[S]/E[T]. Monotone in likelihood and typically converges in
/// ~10-20 iterations — the preferred estimator when throughput matters;
/// agrees with estimate_params_mle at the optimum.
[[nodiscard]] ParamEstimate estimate_params_em(std::span<const std::uint32_t> sent,
                                               std::span<const std::uint32_t> received,
                                               unsigned bits_per_symbol,
                                               const EstimatorOptions& options = {});

}  // namespace ccap::estimate
