// End-to-end covert channel analysis: traces in, capacity verdict out.
//
// This is the practitioner workflow the paper prescribes in Section 4.3:
//   1. estimate the physical (synchronous-model) capacity with traditional
//      methods — here, the M-ary symmetric capacity at the measured
//      substitution rate;
//   2. estimate P_d (and P_i) from the traces;
//   3. report the corrected capacity C * (1 - P_d) together with the
//      Theorem-5 lower / Theorem-1 upper band;
//   4. classify severity following the NCSC-TG-030 ("Light Pink Book")
//      style bandwidth thresholds used in TCSEC covert channel analysis.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "ccap/core/capacity_bounds.hpp"
#include "ccap/estimate/param_estimator.hpp"

namespace ccap::estimate {

enum class Severity : std::uint8_t {
    negligible,   ///< under 0.1 bit/s: generally tolerable
    marginal,     ///< 0.1 - 1 bit/s: document
    significant,  ///< 1 - 100 bit/s: must be auditable
    severe,       ///< over 100 bit/s: unacceptable in TCSEC terms
};

[[nodiscard]] const char* severity_name(Severity s) noexcept;
[[nodiscard]] Severity classify_bandwidth(double bits_per_second) noexcept;

enum class EstimatorKind : std::uint8_t {
    mle,        ///< drift-HMM coordinate-descent ML (default; consistent)
    em,         ///< Baum-Welch EM (same optimum, expected-count M-steps)
    alignment,  ///< edit-distance only (fast; biased under mixed indels)
};

struct AnalyzerConfig {
    unsigned bits_per_symbol = 1;
    /// Channel uses (sender opportunities) per wall-clock second; converts
    /// bits/use into bits/second for the severity classification.
    double uses_per_second = 100.0;
    EstimatorKind estimator_kind = EstimatorKind::mle;
    EstimatorOptions estimator;
};

struct AnalysisReport {
    ParamEstimate params;
    /// Traditional synchronous-model capacity (bits/use): M-ary symmetric
    /// capacity at the measured substitution rate.
    double traditional_bits_per_use = 0.0;
    /// Paper band for the non-synchronous channel (bits/use).
    core::CapacityBand band_bits_per_use;
    /// Section 4.3 recipe: traditional * (1 - P_d).
    double degraded_bits_per_use = 0.0;
    double degraded_bits_per_second = 0.0;
    Severity severity = Severity::negligible;
};

/// Analyze a sent/received trace pair.
[[nodiscard]] AnalysisReport analyze_traces(std::span<const std::uint32_t> sent,
                                            std::span<const std::uint32_t> received,
                                            const AnalyzerConfig& config);

/// Analyze from known channel parameters (no traces needed).
[[nodiscard]] AnalysisReport analyze_params(const core::DiChannelParams& params,
                                            double uses_per_second);

// ---------------------------------------------------------------------------
// The "informal method described in [3]" (NCSC-TG-030, following Tsai &
// Gligor): estimate covert-channel bandwidth from measured operation
// timings instead of an information-theoretic model. The paper's point is
// that this estimate, like the Shannon-model one, silently assumes
// synchchrony — so the same (1 - P_d) correction applies on top.
// ---------------------------------------------------------------------------

struct InformalTimings {
    double bits_per_transfer = 1.0;  ///< b: bits moved per exploit cycle
    double sender_op_seconds = 0.0;  ///< T_s: sender's alter-attribute time
    double receiver_op_seconds = 0.0;  ///< T_r: receiver's sense-attribute time
    double context_switch_seconds = 0.0;  ///< T_cs: one context switch

    void validate() const;
};

/// Tsai-Gligor style informal bandwidth: b / (T_s + T_r + 2*T_cs) bits/s
/// (each cycle alters, switches, senses, switches back).
[[nodiscard]] double informal_bandwidth(const InformalTimings& timings);

/// The paper's corrected informal estimate: informal_bandwidth * (1 - P_d).
[[nodiscard]] double corrected_informal_bandwidth(const InformalTimings& timings,
                                                  const core::DiChannelParams& params);

}  // namespace ccap::estimate
