// Non-stationarity tooling: windowed channel-parameter estimates and a
// single-changepoint detector.
//
// The paper's recipe assumes stationary (P_d, P_i, P_s). Real scheduler
// channels drift — load changes, the defender flips a mitigation on, the
// exploit adapts. Before trusting one global estimate, slice the traces
// into windows, estimate per window, and test whether the deletion rate
// jumped; if it did, analyze the segments separately.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ccap/estimate/param_estimator.hpp"

namespace ccap::estimate {

struct WindowedRates {
    std::vector<double> p_d;  ///< one entry per window
    std::vector<double> p_i;
    std::vector<double> p_s;
    std::size_t window_len = 0;  ///< sent symbols per window
};

/// Blockwise-aligned per-window rates. Windows are consecutive runs of
/// `window_len` sent symbols; the received stream is carved along the same
/// alignment boundaries as estimate_params uses.
[[nodiscard]] WindowedRates windowed_rates(std::span<const std::uint32_t> sent,
                                           std::span<const std::uint32_t> received,
                                           std::size_t window_len);

struct ChangePoint {
    std::size_t index = 0;    ///< first window of the "after" regime
    double mean_before = 0.0;
    double mean_after = 0.0;
    double z_score = 0.0;     ///< standardized jump size
};

/// Single changepoint by binary segmentation on a rate series: the split
/// maximizing the standardized mean difference. Returns nullopt when no
/// split reaches `z_threshold` (or the series is too short to split with
/// at least two windows per side).
[[nodiscard]] std::optional<ChangePoint> detect_rate_change(std::span<const double> series,
                                                            double z_threshold = 4.0);

}  // namespace ccap::estimate
