// Plain-text trace files: the interchange format between real covert
// channel measurements and this library's estimators.
//
// Format: one non-negative integer symbol per line; blank lines and lines
// starting with '#' are ignored. This is deliberately the simplest thing a
// measurement script can emit. Files written by this library additionally
// carry a framing comment
//     # ccap-trace v1 count=N
// after any user comment; readers that find it verify the symbol count, so
// a file truncated by a killed measurement run or a partial copy fails
// loudly (TraceError::truncated) instead of silently feeding a short trace
// into the estimators. Legacy files without the framing line still load.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace ccap::estimate {

/// What went wrong reading a trace; carried by TraceIoError so callers
/// (e.g. the CLI) can map failures to distinct exit paths.
enum class TraceError : std::uint8_t {
    unreadable,  ///< file missing or stream unreadable
    malformed,   ///< a non-comment line is not a non-negative integer
    truncated,   ///< fewer symbols than the framing header declared
};

class TraceIoError : public std::runtime_error {
public:
    TraceIoError(TraceError kind, const std::string& what)
        : std::runtime_error(what), kind_(kind) {}
    [[nodiscard]] TraceError kind() const noexcept { return kind_; }

private:
    TraceError kind_;
};

/// Parse a trace from a stream. Throws TraceIoError (malformed, with a
/// line-numbered message; or truncated when a framing header's count
/// exceeds the symbols present).
[[nodiscard]] std::vector<std::uint32_t> read_trace(std::istream& in);

/// Parse a trace file. Throws TraceIoError if unreadable, malformed, or
/// truncated.
[[nodiscard]] std::vector<std::uint32_t> read_trace_file(const std::string& path);

/// Write a trace with a descriptive header comment followed by the
/// "# ccap-trace v1 count=N" framing line.
void write_trace(std::ostream& out, std::span<const std::uint32_t> trace,
                 const std::string& comment = "");

/// Write a trace file. Throws std::runtime_error when the file can't be
/// created.
void write_trace_file(const std::string& path, std::span<const std::uint32_t> trace,
                      const std::string& comment = "");

}  // namespace ccap::estimate
