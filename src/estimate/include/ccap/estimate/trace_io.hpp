// Plain-text trace files: the interchange format between real covert
// channel measurements and this library's estimators.
//
// Format: one non-negative integer symbol per line; blank lines and lines
// starting with '#' are ignored. This is deliberately the simplest thing a
// measurement script can emit.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace ccap::estimate {

/// Parse a trace from a stream. Throws std::runtime_error with a
/// line-numbered message on malformed input.
[[nodiscard]] std::vector<std::uint32_t> read_trace(std::istream& in);

/// Parse a trace file. Throws std::runtime_error if unreadable/malformed.
[[nodiscard]] std::vector<std::uint32_t> read_trace_file(const std::string& path);

/// Write a trace with a descriptive header comment.
void write_trace(std::ostream& out, std::span<const std::uint32_t> trace,
                 const std::string& comment = "");

/// Write a trace file. Throws std::runtime_error when the file can't be
/// created.
void write_trace_file(const std::string& path, std::span<const std::uint32_t> trace,
                      const std::string& comment = "");

}  // namespace ccap::estimate
