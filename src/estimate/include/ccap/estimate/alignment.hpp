// Edit-distance alignment of sent vs. received symbol traces.
//
// A practitioner measuring a real covert channel observes two streams: what
// the sender pushed and what the receiver sampled. To apply the paper's
// capacity corrections they need (P_d, P_i, P_s), which requires deciding
// which received symbol corresponds to which sent one. We use Levenshtein
// alignment (unit costs for deletion/insertion/substitution, 0 for match)
// with full traceback; ties are broken to prefer matches, then
// substitutions, making the classification deterministic.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ccap::estimate {

enum class EditOp : std::uint8_t { match, substitution, deletion, insertion };

struct EditStep {
    EditOp op = EditOp::match;
    /// Index into the sent trace (valid except for insertions).
    std::size_t sent_index = 0;
    /// Index into the received trace (valid except for deletions).
    std::size_t received_index = 0;
};

struct Alignment {
    std::vector<EditStep> steps;
    std::size_t distance = 0;  ///< Levenshtein distance

    [[nodiscard]] std::size_t count(EditOp op) const noexcept;
    /// "MMSDI"-style compact rendering for logs and tests.
    [[nodiscard]] std::string to_string() const;
};

/// Align two symbol traces. O(|sent| * |received|) time and memory; traces
/// beyond ~20k symbols should be aligned blockwise (see
/// param_estimator.hpp).
[[nodiscard]] Alignment align(std::span<const std::uint32_t> sent,
                              std::span<const std::uint32_t> received);

/// Levenshtein distance only (linear memory), for large traces.
[[nodiscard]] std::size_t edit_distance(std::span<const std::uint32_t> sent,
                                        std::span<const std::uint32_t> received);

}  // namespace ccap::estimate
