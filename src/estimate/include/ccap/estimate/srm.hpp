// Kemmerer's Shared Resource Matrix methodology (TOCS 1983) — the paper's
// reference [1] and the canonical covert channel *identification* step that
// precedes capacity estimation.
//
// Model: shared resources have attributes; system operations Read (R) or
// Modify (M) attributes. An attribute is a potential covert channel medium
// when some operation modifies it and another reads it, and the two
// operations are available to differently-cleared subjects. Indirect flows
// (operation O reads attribute A and modifies attribute B, so A's value can
// reach B's readers) are found by transitive closure over the matrix.
//
// The output feeds this library's pipeline: each identified channel is a
// candidate to measure (sched::covert_pair), estimate (param_estimator) and
// bound (core::capacity_bounds).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ccap::estimate {

class SharedResourceMatrix {
public:
    /// Register an attribute (e.g. "file.lock", "disk.arm_position").
    /// Returns its index; re-registering a name returns the existing index.
    std::size_t add_attribute(const std::string& name);

    /// Register an operation with the sets of attributes it reads and
    /// modifies (attribute names are auto-registered).
    void add_operation(const std::string& name, const std::vector<std::string>& reads,
                       const std::vector<std::string>& modifies);

    [[nodiscard]] std::size_t num_attributes() const noexcept { return attributes_.size(); }
    [[nodiscard]] std::size_t num_operations() const noexcept { return operations_.size(); }
    [[nodiscard]] const std::vector<std::string>& attributes() const noexcept {
        return attributes_;
    }

    /// True if `op` reads/modifies `attribute` (directly).
    [[nodiscard]] bool reads(const std::string& op, const std::string& attribute) const;
    [[nodiscard]] bool modifies(const std::string& op, const std::string& attribute) const;

    struct Channel {
        std::string attribute;    ///< the shared medium
        std::string sender_op;    ///< modifies the attribute
        std::string receiver_op;  ///< reads it (possibly via indirect flow)
        bool indirect = false;    ///< receiver senses it through a derived attribute
    };

    /// Direct candidates: (attribute, modifier, reader) triples with
    /// modifier != reader.
    [[nodiscard]] std::vector<Channel> direct_channels() const;

    /// Candidates including indirect flows: the transitive closure where an
    /// operation that reads A and modifies B propagates A's information
    /// into B ("A flows to B"), so reading B senses A.
    [[nodiscard]] std::vector<Channel> all_channels() const;

    /// Attribute-to-attribute information-flow closure: flow(a, b) iff some
    /// operation chain carries a's value into b (reflexive).
    [[nodiscard]] std::vector<std::vector<bool>> flow_closure() const;

private:
    struct Operation {
        std::string name;
        std::vector<std::size_t> reads;
        std::vector<std::size_t> modifies;
    };
    [[nodiscard]] std::size_t attribute_index(const std::string& name) const;

    std::vector<std::string> attributes_;
    std::vector<Operation> operations_;
};

}  // namespace ccap::estimate
