// Empirical mutual-information estimation from paired samples.
//
// Used to measure the information actually moving through a simulated
// covert channel (bench E1 compares the measured MI of the synchronous
// portion of a DI channel against the Theorem-1 bound), and by the analyzer
// when only a paired trace — not a channel model — is available.
#pragma once

#include <cstdint>
#include <span>

namespace ccap::estimate {

struct MiResult {
    double plug_in = 0.0;       ///< naive plug-in estimate (biased upward)
    double miller_madow = 0.0;  ///< plug-in minus the Miller-Madow bias term
    std::size_t samples = 0;
};

/// Estimate I(X;Y) in bits from paired symbol samples. `x` and `y` must
/// have equal, nonzero length; alphabet sizes are inferred from the data.
[[nodiscard]] MiResult estimate_mutual_information(std::span<const std::uint32_t> x,
                                                   std::span<const std::uint32_t> y);

/// Empirical entropy (bits) of one symbol stream, with the same two
/// estimators applied.
[[nodiscard]] MiResult estimate_entropy(std::span<const std::uint32_t> x);

}  // namespace ccap::estimate
