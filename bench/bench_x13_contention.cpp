// X13 — sharded multi-tenant contention engine: million-flow throughput.
//
// The contention engine (sched/contention.hpp) maps offered load onto
// per-flow effective channel parameters and then onto capacity. The naive
// realization evaluates one Monte-Carlo lattice estimate per flow on the
// scalar path; the engine instead collapses flows onto quantized grid
// nodes (a few dozen for any realistic load mix), evaluates each node once
// through the SIMD batch engine, and memoizes nodes in the sharded
// capacity cache. This harness measures what that buys in flows/sec at
// bench scale (>= 1e5 flows) and records the aggregate capacity-vs-load
// curve the engine exists to produce.
//
// Correctness gates before any timing (exit 1 on violation):
//   * full run bit-identical at 1 vs 8 worker threads,
//   * bit-identical with the capacity cache on vs off,
//   * the fast path (dedup + cache + SIMD tiles) bit-identical to the
//     naive per-flow scalar path (node seeds derive from node keys, so
//     both compute the same estimates).
//
// Emits BENCH_JSON and persists BENCH_contention.json (gated by
// scripts/bench_compare.py); `--smoke` writes BENCH_contention_smoke.json
// so ctest runs never clobber the checked-in full-size baseline.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "ccap/info/capacity_cache.hpp"
#include "ccap/sched/contention.hpp"

namespace {

using ccap::info::CapacityCache;
using ccap::info::McTiling;
using ccap::sched::ContentionConfig;
using ccap::sched::ContentionEngine;
using ccap::sched::ContentionReport;

CapacityCache::Config cache_config(bool fast, std::size_t block_len,
                                   std::size_t num_blocks) {
    CapacityCache::Config cc;
    cc.grid = {0.01, 0.01, 0.60, 0.30};
    cc.base.max_drift = 8;
    cc.base.max_insert_run = 4;
    cc.mc.block_len = block_len;
    cc.mc.num_blocks = num_blocks;
    cc.mc.threads = 1;
    if (!fast) {
        cc.enabled = false;               // no memoization
        cc.mc.tiling = McTiling::scalar;  // one-block-at-a-time lattice sweeps
    }
    return cc;
}

bool reports_identical(const ContentionReport& a, const ContentionReport& b) {
    if (a.flows.size() != b.flows.size() || a.total_offered != b.total_offered ||
        a.total_served != b.total_served || a.distinct_nodes != b.distinct_nodes)
        return false;
    if (std::memcmp(&a.aggregate_capacity_per_tick, &b.aggregate_capacity_per_tick,
                    sizeof(double)) != 0 ||
        std::memcmp(&a.mean_capacity, &b.mean_capacity, sizeof(double)) != 0)
        return false;
    for (std::size_t f = 0; f < a.flows.size(); ++f)
        if (std::memcmp(&a.flows[f].capacity, &b.flows[f].capacity, sizeof(double)) != 0)
            return false;
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--smoke") smoke = true;

    const std::size_t bench_flows = smoke ? 2000 : 120000;
    const ccap::sched::SimTime bench_ticks = smoke ? 128 : 256;
    const std::size_t mc_block = smoke ? 16 : 48;
    const std::size_t mc_blocks = smoke ? 2 : 6;

    ContentionConfig base;
    base.offered_load = 1.1;
    base.slices = 64;
    base.domain_flows = 16;
    base.queue_cap = 8;
    base.deadline = 64;
    base.seed = 0x13;

    ccap::bench::BenchJson json(smoke ? "contention_smoke" : "contention");
    json.field("flows", static_cast<std::uint64_t>(bench_flows));
    json.field("ticks", static_cast<std::uint64_t>(bench_ticks));
    json.field("mc_block", static_cast<std::uint64_t>(mc_block));
    json.field("mc_blocks", static_cast<std::uint64_t>(mc_blocks));

    std::printf("X13: contention engine — memoized grid nodes vs naive per-flow MC\n");

    // ---- Correctness gates (small scale, full pipeline) -------------------
    ContentionConfig small = base;
    small.flows = 384;
    small.ticks = 128;
    small.slices = 16;

    bool thread_identical = true, cache_identical = true, naive_identical = true;
    {
        ContentionConfig cfg = small;
        cfg.threads = 1;
        CapacityCache c1(cache_config(true, mc_block, mc_blocks));
        const ContentionReport r1 = ContentionEngine(cfg, c1).run();
        cfg.threads = 8;
        CapacityCache c8(cache_config(true, mc_block, mc_blocks));
        const ContentionReport r8 = ContentionEngine(cfg, c8).run();
        thread_identical = reports_identical(r1, r8);

        {
            CapacityCache::Config cc = cache_config(true, mc_block, mc_blocks);
            cc.enabled = false;
            CapacityCache disabled(cc);
            cache_identical = reports_identical(r8, ContentionEngine(cfg, disabled).run());
        }

        ContentionConfig naive_cfg = cfg;
        naive_cfg.dedup_nodes = false;
        CapacityCache naive_cache(cache_config(false, mc_block, mc_blocks));
        naive_identical =
            reports_identical(r8, ContentionEngine(naive_cfg, naive_cache).run());
    }
    std::printf("  identity: threads %s, cache on/off %s, fast-vs-naive %s\n",
                thread_identical ? "yes" : "NO", cache_identical ? "yes" : "NO",
                naive_identical ? "yes" : "NO");
    json.field("thread_identical", thread_identical ? 1 : 0);
    json.field("cache_identical", cache_identical ? 1 : 0);
    json.field("naive_identical", naive_identical ? 1 : 0);

    // ---- Throughput: naive per-flow scalar vs memoized SIMD path ----------
    ContentionConfig cfg = base;
    cfg.flows = bench_flows;
    cfg.ticks = bench_ticks;

    double sim_sec = 0.0;
    {
        CapacityCache cache(cache_config(true, mc_block, mc_blocks));
        const ContentionEngine engine(cfg, cache);
        ccap::bench::WallTimer timer;
        const auto loads = engine.simulate();
        sim_sec = timer.seconds();
        if (loads.empty()) std::printf("# impossible\n");
    }

    ContentionConfig naive_cfg = cfg;
    naive_cfg.dedup_nodes = false;
    CapacityCache naive_cache(cache_config(false, mc_block, mc_blocks));
    ccap::bench::WallTimer naive_timer;
    const ContentionReport naive = ContentionEngine(naive_cfg, naive_cache).run();
    const double naive_sec = naive_timer.seconds();

    CapacityCache fast_cache(cache_config(true, mc_block, mc_blocks));
    const ContentionEngine fast_engine(cfg, fast_cache);
    ccap::bench::WallTimer cold_timer;
    const ContentionReport fast_cold = fast_engine.run();
    const double fast_cold_sec = cold_timer.seconds();
    ccap::bench::WallTimer warm_timer;
    const ContentionReport fast_warm = fast_engine.run();
    const double fast_warm_sec = warm_timer.seconds();

    const bool bench_identical = reports_identical(naive, fast_cold) &&
                                 reports_identical(fast_cold, fast_warm);
    const double flows_d = static_cast<double>(bench_flows);
    const double speedup = naive_sec / fast_cold_sec;
    std::printf("  %zu flows, %llu ticks (simulate alone: %.2fs)\n", bench_flows,
                static_cast<unsigned long long>(bench_ticks), sim_sec);
    std::printf("  naive per-flow scalar: %8.2fs  %12.0f flows/sec\n", naive_sec,
                flows_d / naive_sec);
    std::printf("  memoized cold cache:   %8.2fs  %12.0f flows/sec  (%.2fx)\n",
                fast_cold_sec, flows_d / fast_cold_sec, speedup);
    std::printf("  memoized warm cache:   %8.2fs  %12.0f flows/sec  (%.2fx)\n",
                fast_warm_sec, flows_d / fast_warm_sec, naive_sec / fast_warm_sec);
    std::printf("  distinct capacity nodes: %zu of %zu flows, identical: %s\n",
                fast_cold.distinct_nodes, bench_flows, bench_identical ? "yes" : "NO");
    json.field("sim_seconds", sim_sec);
    json.field("naive_seconds", naive_sec);
    json.field("fast_cold_seconds", fast_cold_sec);
    json.field("fast_warm_seconds", fast_warm_sec);
    json.field("flows_per_sec_naive", flows_d / naive_sec);
    json.field("flows_per_sec_fast", flows_d / fast_cold_sec);
    json.field("flows_per_sec_warm", flows_d / fast_warm_sec);
    json.field("flows_speedup", speedup);
    json.field("distinct_nodes", static_cast<std::uint64_t>(fast_cold.distinct_nodes));
    json.field("bench_identical", bench_identical ? 1 : 0);

    // ---- Aggregate capacity vs offered load (the engine's deliverable) ----
    std::printf("  %8s %12s %12s %10s %10s %16s\n", "load", "offered", "dropped",
                "mean P_d", "mean P_i", "agg bits/tick");
    const std::vector<double> curve_loads = {0.2, 0.5, 0.8, 1.1, 1.5};
    for (const double load : curve_loads) {
        ContentionConfig point = cfg;
        point.offered_load = load;
        const ContentionReport r = ContentionEngine(point, fast_cache).run();
        std::printf("  %8.2f %12llu %12llu %10.4f %10.4f %16.4f\n", load,
                    static_cast<unsigned long long>(r.total_offered),
                    static_cast<unsigned long long>(r.total_dropped), r.mean_pd_eff,
                    r.mean_pi_eff, r.aggregate_capacity_per_tick);
        char tag[32];
        std::snprintf(tag, sizeof tag, "%03d", static_cast<int>(std::lround(load * 100)));
        json.field(std::string("agg_bits_per_tick_load") + tag, r.aggregate_capacity_per_tick);
    }

    json.write();

    if (!thread_identical || !cache_identical || !naive_identical || !bench_identical) {
        std::fprintf(stderr, "FAIL: contention engine paths are not bit-identical\n");
        return 1;
    }
    if (!smoke && speedup < 3.0) {
        std::fprintf(stderr, "FAIL: memoized path speedup %.2fx < 3x over naive\n", speedup);
        return 1;
    }
    return 0;
}
