// E10 — Section 4.3 MLS remark: the legal Low->High information flow is a
// perfect feedback path, so MLS covert channels "are relatively easy to
// exploit in general and tend to be fast".
//
// Regenerates the exfiltration comparison across schedulers and symbol
// widths: goodput and exactness with vs without the legal-flow exploit,
// against the theoretical q(1-q) feedback throughput.

#include <cstdio>
#include <memory>

#include "ccap/core/protocol_analysis.hpp"
#include "ccap/sched/mls_system.hpp"

int main() {
    using namespace ccap;

    constexpr std::size_t kSecret = 4000;
    std::printf("E10: MLS exfiltration with/without legal-flow feedback (%zu symbols)\n\n",
                kSecret);
    std::printf("%-14s %-4s %12s %10s %12s %10s %12s\n", "scheduler", "N", "no-fb good",
                "no-fb ok", "fb goodput", "fb ok", "fb theory");

    struct Sched {
        const char* label;
        std::unique_ptr<sched::Scheduler> (*make)();
        double sender_share;
    };
    const Sched schedulers[] = {
        {"round_robin", sched::make_round_robin, 0.5},
        {"random", sched::make_random, 0.5},
        {"lottery", sched::make_lottery, 0.5},
    };

    for (const auto& s : schedulers) {
        for (const unsigned n : {1U, 4U}) {
            sched::MlsConfig base;
            base.message_len = kSecret;
            base.bits_per_symbol = n;

            sched::MlsConfig no_fb = base;
            no_fb.use_legal_feedback = false;
            const auto raw = sched::run_mls_exfiltration(s.make(), no_fb, 0xE10);

            sched::MlsConfig fb = base;
            fb.use_legal_feedback = true;
            const auto ack = sched::run_mls_exfiltration(s.make(), fb, 0xE10);

            // Round-robin alternation delivers one symbol per two quanta; the
            // memoryless schedulers match the q(1-q) analysis.
            const double theory = s.make == sched::make_round_robin
                                      ? 0.5
                                      : core::handshake_expected_throughput(s.sender_share);
            std::printf("%-14s %-4u %12.4f %10s %12.4f %10s %12.4f\n", s.label, n,
                        raw.goodput(), raw.exact ? "exact" : "LOSSY", ack.goodput(),
                        ack.exact ? "exact" : "LOSSY", theory);
        }
    }
    std::printf("\nShape check: without feedback the correct-prefix goodput collapses and\n"
                "the secret is corrupted; with the legal upward flow the transfer is\n"
                "exact at the theoretical feedback rate, independent of symbol width\n"
                "(wider symbols leak N bits per delivered symbol: multiply accordingly).\n");
    return 0;
}
