// E1 — Theorem 1 / eq (1): the erasure upper bound C_max = N(1 - P_d).
//
// Regenerates the bound as a curve over P_d for several symbol widths and
// cross-checks it three independent ways:
//   * Blahut-Arimoto capacity of the matched M-ary erasure DMC (must agree
//     to solver precision);
//   * Monte-Carlo information delivered by the matched erasure view of a
//     simulated Definition-1 channel (same noise realization, locations
//     revealed);
//   * the no-feedback achievable rate of the raw deletion channel (drift
//     lattice MC), which must sit *below* the bound — the price of losing
//     the side information.
//
// The (N, P_d) grid rows are independent (each seeds its own channel and
// generators), so they are evaluated through the shared thread pool; the
// serial-vs-parallel grid wall time is emitted as BENCH_e1_grid.json.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "ccap/core/capacity_bounds.hpp"
#include "ccap/core/erasure_channel.hpp"
#include "ccap/info/blahut_arimoto.hpp"
#include "ccap/info/deletion_bounds.hpp"
#include "ccap/util/thread_pool.hpp"

namespace {

using namespace ccap;

struct GridPoint {
    unsigned n;
    double pd;
};

/// One table row; independent of every other row by construction.
std::string run_point(const GridPoint& g, unsigned mc_threads) {
    const core::DiChannelParams p{g.pd, 0.0, 0.0, g.n};
    const double bound = core::theorem1_upper_bound(p);
    const double ba = info::blahut_arimoto(info::make_mary_erasure(p.alphabet(), g.pd)).capacity;

    // Monte-Carlo erasure view.
    core::DeletionInsertionChannel ch(p, 0xE1);
    util::Rng rng(0xE1F0 + g.n);
    std::vector<std::uint32_t> msg(20000);
    for (auto& s : msg) s = static_cast<std::uint32_t>(rng.uniform_below(p.alphabet()));
    const auto t = ch.transduce(msg);
    const auto view = core::erasure_view(t);
    const double mc =
        core::erasure_view_information_bits(view, g.n) / static_cast<double>(t.channel_uses);

    // No-feedback achievable rate (binary only, where it is cheap).
    double nofb = -1.0;
    if (g.n == 1 && g.pd < 0.45) {
        util::Rng rng2(0xE1F1);
        info::DriftParams dp;
        dp.p_d = g.pd;
        nofb = info::iid_mutual_information_rate(dp, {96, 12, mc_threads}, rng2).rate;
    }

    char line[160];
    if (nofb >= 0.0)
        std::snprintf(line, sizeof line, "%-6.2f %-3u %12.4f %12.4f %14.4f %16.4f\n", g.pd,
                      g.n, bound, ba, mc, nofb);
    else
        std::snprintf(line, sizeof line, "%-6.2f %-3u %12.4f %12.4f %14.4f %16s\n", g.pd, g.n,
                      bound, ba, mc, "-");
    return line;
}

}  // namespace

int main() {
    using namespace ccap;

    std::printf("E1: Theorem 1 upper bound C_max = N(1-P_d)  [bits/channel use]\n");
    std::printf("%-6s %-3s %12s %12s %14s %16s\n", "P_d", "N", "N(1-P_d)", "BA(erasure)",
                "MC erasure", "MC no-feedback");

    std::vector<GridPoint> grid;
    for (const unsigned n : {1U, 2U, 4U})
        for (const double pd : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) grid.push_back({n, pd});

    auto& pool = util::ThreadPool::shared();
    std::vector<std::string> rows(grid.size());

    // Serial reference pass, then the same grid through the pool. Rows are
    // seeded per-point, so both passes must produce identical text.
    bench::WallTimer serial_timer;
    for (std::size_t i = 0; i < grid.size(); ++i) rows[i] = run_point(grid[i], 1);
    const double serial_sec = serial_timer.seconds();
    const std::vector<std::string> serial_rows = rows;

    bench::WallTimer parallel_timer;
    util::parallel_for(pool, grid.size(), [&](std::size_t i) { rows[i] = run_point(grid[i], 1); });
    const double parallel_sec = parallel_timer.seconds();

    for (const auto& row : rows) std::fputs(row.c_str(), stdout);
    std::printf("\nShape check: column 3 == column 4 (analytic), column 5 tracks the bound\n"
                "(it *is* the erasure channel), column 6 < column 3 strictly for P_d > 0.\n");
    std::printf("Grid determinism: parallel rows %s serial rows.\n",
                rows == serial_rows ? "identical to" : "DIFFER FROM");

    bench::BenchJson json("e1_grid");
    json.field("points", static_cast<std::uint64_t>(grid.size()))
        .field("serial_sec", serial_sec)
        .field("parallel_sec", parallel_sec)
        .field("speedup", parallel_sec > 0.0 ? serial_sec / parallel_sec : 0.0)
        .field("pool_threads", static_cast<std::uint64_t>(pool.size()))
        .field("deterministic", rows == serial_rows ? "true" : "false");
    json.write();
    return rows == serial_rows ? 0 : 1;
}
