// E1 — Theorem 1 / eq (1): the erasure upper bound C_max = N(1 - P_d).
//
// Regenerates the bound as a curve over P_d for several symbol widths and
// cross-checks it three independent ways:
//   * Blahut-Arimoto capacity of the matched M-ary erasure DMC (must agree
//     to solver precision);
//   * Monte-Carlo information delivered by the matched erasure view of a
//     simulated Definition-1 channel (same noise realization, locations
//     revealed);
//   * the no-feedback achievable rate of the raw deletion channel (drift
//     lattice MC), which must sit *below* the bound — the price of losing
//     the side information.

#include <cstdio>

#include "ccap/core/capacity_bounds.hpp"
#include "ccap/core/erasure_channel.hpp"
#include "ccap/info/blahut_arimoto.hpp"
#include "ccap/info/deletion_bounds.hpp"

int main() {
    using namespace ccap;

    std::printf("E1: Theorem 1 upper bound C_max = N(1-P_d)  [bits/channel use]\n");
    std::printf("%-6s %-3s %12s %12s %14s %16s\n", "P_d", "N", "N(1-P_d)", "BA(erasure)",
                "MC erasure", "MC no-feedback");

    for (const unsigned n : {1U, 2U, 4U}) {
        for (const double pd : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
            const core::DiChannelParams p{pd, 0.0, 0.0, n};
            const double bound = core::theorem1_upper_bound(p);
            const double ba =
                info::blahut_arimoto(info::make_mary_erasure(p.alphabet(), pd)).capacity;

            // Monte-Carlo erasure view.
            core::DeletionInsertionChannel ch(p, 0xE1);
            util::Rng rng(0xE1F0 + n);
            std::vector<std::uint32_t> msg(20000);
            for (auto& s : msg) s = static_cast<std::uint32_t>(rng.uniform_below(p.alphabet()));
            const auto t = ch.transduce(msg);
            const auto view = core::erasure_view(t);
            const double mc = core::erasure_view_information_bits(view, n) /
                              static_cast<double>(t.channel_uses);

            // No-feedback achievable rate (binary only, where it is cheap).
            double nofb = -1.0;
            if (n == 1 && pd < 0.45) {
                util::Rng rng2(0xE1F1);
                info::DriftParams dp;
                dp.p_d = pd;
                nofb = info::iid_mutual_information_rate(dp, 96, 12, rng2).rate;
            }

            if (nofb >= 0.0)
                std::printf("%-6.2f %-3u %12.4f %12.4f %14.4f %16.4f\n", pd, n, bound, ba, mc,
                            nofb);
            else
                std::printf("%-6.2f %-3u %12.4f %12.4f %14.4f %16s\n", pd, n, bound, ba, mc,
                            "-");
        }
    }
    std::printf("\nShape check: column 3 == column 4 (analytic), column 5 tracks the bound\n"
                "(it *is* the erasure channel), column 6 < column 3 strictly for P_d > 0.\n");
    return 0;
}
