// E9 — Section 3.3 / Definitions 1-2: what the erasure side information is
// worth. A deletion-insertion channel and its matched (extended) erasure
// channel see the *same* noise realization; only the location knowledge
// differs. The bench quantifies the gap between:
//   * the erasure capacity N(1-P_d) (locations known),
//   * the best analytic lower bounds for the blind deletion channel
//     (Gallager 1-H(p), Mitzenmacher-Drinea (1-p)/9, small-p expansion),
//   * the drift-lattice Monte-Carlo achievable rate (iid inputs).

#include <cstdio>

#include "ccap/info/deletion_bounds.hpp"

int main() {
    using namespace ccap;

    std::printf("E9: deletion channel vs matched erasure channel (binary, no feedback)\n");
    std::printf("%-6s %10s %12s %12s %12s %12s %10s\n", "P_d", "erasure", "MC rate",
                "Gallager", "small-p", "MD (1-p)/9", "gap");

    for (const double pd : {0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4}) {
        util::Rng rng(0xE9);
        info::DriftParams dp;
        dp.p_d = pd;
        const auto mc = info::iid_mutual_information_rate(dp, 128, 16, rng);
        const double erasure = info::erasure_upper_bound(pd);
        std::printf("%-6.2f %10.4f %12.4f %12.4f %12.4f %12.4f %10.4f\n", pd, erasure,
                    mc.rate, info::gallager_deletion_lower_bound(pd),
                    info::small_p_deletion_expansion(pd),
                    info::mitzenmacher_drinea_lower_bound(pd), erasure - mc.rate);
    }

    std::printf("\nWith insertions as well (P_i = P_d):\n");
    std::printf("%-6s %10s %12s\n", "rate", "erasure", "MC rate");
    for (const double r : {0.02, 0.05, 0.1, 0.2}) {
        util::Rng rng(0xE9F);
        info::DriftParams dp;
        dp.p_d = r;
        dp.p_i = r;
        const auto mc = info::iid_mutual_information_rate(dp, 128, 16, rng);
        std::printf("%-6.2f %10.4f %12.4f\n", r, info::erasure_upper_bound(r), mc.rate);
    }
    std::printf("\nShape check: the blind (deletion-insertion) rate always sits strictly\n"
                "below the matched erasure capacity, with the gap growing in the error\n"
                "rate — the side information of Definition 2 has real value, which is\n"
                "why the erasure channel only *upper-bounds* the covert channel (Thm 1).\n");
    return 0;
}
