// X16 — online capacity tracker: streaming estimation vs the offline batch
// pipeline under a non-stationary fault profile.
//
// The offline analyzer fits ONE parameter set to the whole trace; under the
// cosine deletion drift of core/fault_injection.hpp the channel never holds
// that parameter set, so the batch capacity is wrong for every window. The
// tracker (estimate/capacity_tracker.hpp) follows the instantaneous truth
// with bounded lag: this harness quantifies the gap as mean absolute
// capacity error against a per-window ground truth evaluated through the
// tracker's own grid cache — tracker and truth share one quantization, so
// the comparison has no interpolation noise in it.
//
// Ground truth per window: the drift component adds a per-use delivery-drop
// probability delta(t) = A (1 - cos(2 pi t / T)) / 2, so a window covering
// uses [a, b) has effective deletion P_d_eff = p_d + (1 - p_d) * mean
// delta(t) over [a, b); truth capacity is the cache node nearest
// (P_d_eff, 0).
//
// Correctness gates before any timing (exit 1 on violation):
//   * thread_invariant — full TrackerUpdate sequence bit-identical with
//     prefetch at 1 vs 8 worker threads,
//   * resume_identical — checkpoint mid-stream, rebuild, replay: the tail
//     bit-identical to the uninterrupted run,
//   * null_batch_identical — a stationary stream's every window reproduces
//     the offline batch estimate bit for bit.
//
// Emits BENCH_JSON and persists BENCH_tracker.json (gated by
// scripts/bench_compare.py); `--smoke` writes BENCH_tracker_smoke.json so
// ctest runs never clobber the checked-in full-size baseline.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "ccap/core/stream_source.hpp"
#include "ccap/estimate/capacity_tracker.hpp"
#include "ccap/estimate/param_estimator.hpp"
#include "ccap/util/checkpoint_io.hpp"

namespace {

using ccap::core::FaultProfile;
using ccap::core::FaultStreamSource;
using ccap::core::StreamChunk;
using ccap::estimate::CapacityTracker;
using ccap::estimate::TrackerConfig;
using ccap::estimate::TrackerStatus;
using ccap::estimate::TrackerUpdate;

TrackerConfig tracker_config(bool smoke) {
    TrackerConfig tc;
    tc.window_len = smoke ? 800 : 2000;
    tc.trend_window = 4;
    tc.drift_slope = 0.005;
    tc.drift_sustain = 2;
    tc.cache.grid.pd_step = smoke ? 0.05 : 0.02;
    tc.cache.grid.pi_step = smoke ? 0.05 : 0.02;
    tc.cache.base.alphabet = 2;
    tc.cache.mc.block_len = smoke ? 16 : 48;
    tc.cache.mc.num_blocks = smoke ? 4 : 8;
    return tc;
}

FaultStreamSource::Config source_config(double pd, FaultProfile profile,
                                        std::size_t window_len,
                                        std::uint64_t windows, std::uint64_t seed) {
    FaultStreamSource::Config sc;
    sc.params.p_d = pd;
    sc.params.bits_per_symbol = 1;
    sc.profile = std::move(profile);
    sc.window_len = window_len;
    sc.windows = windows;
    sc.seed = seed;
    return sc;
}

/// Mean of the drift schedule delta(t) over uses [a, b).
double mean_delta(const FaultProfile& p, std::uint64_t a, std::uint64_t b) {
    if (p.drift_amplitude == 0.0 || p.drift_period == 0 || b <= a) return 0.0;
    double sum = 0.0;
    for (std::uint64_t t = a; t < b; ++t) {
        const double phase = 2.0 * M_PI * static_cast<double>(t % p.drift_period) /
                             static_cast<double>(p.drift_period);
        sum += p.drift_amplitude * (1.0 - std::cos(phase)) / 2.0;
    }
    return sum / static_cast<double>(b - a);
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--smoke") smoke = true;

    const TrackerConfig tc = tracker_config(smoke);
    const double nominal_pd = 0.1;
    const FaultProfile drift =
        FaultProfile::drifting(0.3, smoke ? 4000 : 12000);
    const std::uint64_t n_windows = smoke ? 8 : 40;
    const std::uint64_t seed = 0x16;

    ccap::bench::BenchJson json(smoke ? "tracker_smoke" : "tracker");
    json.field("window_len", static_cast<std::uint64_t>(tc.window_len));
    json.field("smoothing", tc.smoothing);
    json.field("fault_profile", drift.name);
    json.field("pd_step", tc.cache.grid.pd_step);
    json.field("stream_windows", n_windows);

    std::printf("X16: online capacity tracker — streaming vs batch under drift\n");
    std::printf("  %llu windows x %zu symbols, profile %s (A=%.2f, T=%llu), grid %.2f\n",
                static_cast<unsigned long long>(n_windows), tc.window_len,
                drift.name.c_str(), drift.drift_amplitude,
                static_cast<unsigned long long>(drift.drift_period),
                tc.cache.grid.pd_step);

    // ---- Drift run (cold cache, timed) ------------------------------------
    CapacityTracker tracker(tc);
    FaultStreamSource src(source_config(nominal_pd, drift, tc.window_len,
                                        n_windows, seed));
    std::vector<StreamChunk> chunks;
    std::vector<TrackerUpdate> updates;
    ccap::bench::WallTimer timer;
    while (auto c = src.next()) {
        updates.push_back(tracker.ingest(*c));
        chunks.push_back(std::move(*c));
    }
    const double track_sec = timer.seconds();
    const double windows_per_sec = static_cast<double>(updates.size()) / track_sec;

    // ---- Ground truth per window, through the tracker's own cache ---------
    std::vector<std::uint32_t> all_sent, all_received;
    std::vector<double> truth(updates.size(), 0.0);
    std::uint64_t uses = 0;
    for (std::size_t w = 0; w < chunks.size(); ++w) {
        const std::uint64_t next_uses = uses + chunks[w].channel_uses;
        const double pd_eff =
            nominal_pd + (1.0 - nominal_pd) * mean_delta(drift, uses, next_uses);
        truth[w] = tracker.cache().at(tracker.cache().quantize(pd_eff, 0.0)).rate;
        uses = next_uses;
        all_sent.insert(all_sent.end(), chunks[w].sent.begin(), chunks[w].sent.end());
        all_received.insert(all_received.end(), chunks[w].received.begin(),
                            chunks[w].received.end());
    }
    const ccap::estimate::ParamEstimate batch =
        ccap::estimate::estimate_params(all_sent, all_received);
    const double batch_cap =
        tracker.cache().at(tracker.cache().quantize(batch.p_d.value, batch.p_i.value))
            .rate;

    double tracker_mae = 0.0, batch_mae = 0.0;
    std::size_t within_bound = 0;
    std::uint64_t resyncs = 0, degraded = 0;
    for (std::size_t w = 0; w < updates.size(); ++w) {
        const double err = std::fabs(updates[w].capacity - truth[w]);
        tracker_mae += err;
        batch_mae += std::fabs(batch_cap - truth[w]);
        if (err <= updates[w].bound) ++within_bound;
        resyncs = updates[w].resyncs;
        if (updates[w].status == TrackerStatus::degraded) ++degraded;
    }
    tracker_mae /= static_cast<double>(updates.size());
    batch_mae /= static_cast<double>(updates.size());
    const double within_bound_rate =
        static_cast<double>(within_bound) / static_cast<double>(updates.size());

    std::printf("  %6s %8s %10s %10s %10s %10s\n", "win", "status", "P_d", "truth",
                "tracked", "served");
    for (std::size_t w = 0; w < updates.size(); ++w)
        std::printf("  %6zu %8s %10.4f %10.4f %10.4f %10.4f\n", w,
                    ccap::estimate::tracker_status_name(updates[w].status),
                    updates[w].p_d, truth[w], updates[w].capacity,
                    updates[w].served_rate);
    std::printf("  tracker MAE %.4f vs batch MAE %.4f bits/use (%.2fx); "
                "within-bound %.0f%%, %llu resyncs\n",
                tracker_mae, batch_mae, batch_mae / tracker_mae,
                100.0 * within_bound_rate, static_cast<unsigned long long>(resyncs));
    std::printf("  %.3fs for %zu windows (%.1f windows/s, cold cache)\n", track_sec,
                updates.size(), windows_per_sec);

    // ---- Identity gates ---------------------------------------------------
    // Thread invariance: prefetch warm-up at 8 threads must reproduce the
    // 1-thread update stream bit for bit (node purity).
    bool thread_invariant = true;
    {
        auto run = [&](unsigned threads) {
            TrackerConfig wide = tc;
            wide.prefetch = 4;
            wide.threads = threads;
            CapacityTracker t(wide);
            std::vector<TrackerUpdate> out;
            for (const StreamChunk& c : chunks) out.push_back(t.ingest(c));
            return out;
        };
        const std::vector<TrackerUpdate> serial = run(1);
        const std::vector<TrackerUpdate> wide = run(8);
        for (std::size_t w = 0; w < serial.size(); ++w)
            thread_invariant = thread_invariant && serial[w] == wide[w] &&
                               serial[w] == updates[w];
    }

    // Checkpoint/resume: serialize at the midpoint, rebuild, replay the
    // remaining chunks — the tail must equal the uninterrupted run's.
    bool resume_identical = true;
    {
        const std::size_t mid = chunks.size() / 2;
        CapacityTracker head(tc);
        for (std::size_t w = 0; w < mid; ++w) (void)head.ingest(chunks[w]);
        CapacityTracker resumed = CapacityTracker::resume(tc, head.checkpoint());
        for (std::size_t w = mid; w < chunks.size(); ++w)
            resume_identical =
                resume_identical && resumed.ingest(chunks[w]) == updates[w];
    }

    // Stationary stream: every window must reproduce the offline batch
    // estimate bit for bit (the acceptance anchor). The gate runs on its own
    // coarse 0.05 grid with 2000-symbol windows regardless of --smoke: for
    // every window to quantize onto the batch node, the window estimate's
    // sampling noise (~0.009 at n = 2000) must sit well inside half a grid
    // step — the claim is about the machinery being identical, not about
    // grid resolution.
    bool null_batch_identical = true;
    {
        TrackerConfig null_tc = tc;
        null_tc.window_len = 2000;
        null_tc.cache.grid.pd_step = 0.05;
        null_tc.cache.grid.pi_step = 0.05;
        CapacityTracker t(null_tc);
        FaultStreamSource null_src(source_config(0.2, FaultProfile{}, 2000,
                                                 smoke ? 4 : 8, seed + 1));
        std::vector<std::uint32_t> ns, nr;
        std::vector<TrackerUpdate> nu;
        while (auto c = null_src.next()) {
            ns.insert(ns.end(), c->sent.begin(), c->sent.end());
            nr.insert(nr.end(), c->received.begin(), c->received.end());
            nu.push_back(t.ingest(*c));
        }
        const ccap::estimate::ParamEstimate nb = ccap::estimate::estimate_params(ns, nr);
        const double node = t.cache().at(t.cache().quantize(nb.p_d.value,
                                                            nb.p_i.value)).rate;
        for (const TrackerUpdate& u : nu)
            null_batch_identical = null_batch_identical &&
                                   u.window_capacity == node && u.capacity == node;
    }

    std::printf("  identity: threads %s, resume %s, null-vs-batch %s\n",
                thread_invariant ? "yes" : "NO", resume_identical ? "yes" : "NO",
                null_batch_identical ? "yes" : "NO");

    json.field("thread_invariant", thread_invariant ? 1 : 0);
    json.field("resume_identical", resume_identical ? 1 : 0);
    json.field("null_batch_identical", null_batch_identical ? 1 : 0);
    json.field("tracker_mae", tracker_mae);
    json.field("batch_mae", batch_mae);
    json.field("within_bound_rate", within_bound_rate);
    json.field("resyncs", resyncs);
    json.field("degraded_windows", degraded);
    json.field("track_seconds", track_sec);
    json.field("windows_per_sec", windows_per_sec);
    json.write();

    if (!thread_invariant || !resume_identical || !null_batch_identical) {
        std::fprintf(stderr, "FAIL: tracker identity gates violated\n");
        return 1;
    }
    if (!smoke && tracker_mae >= batch_mae) {
        std::fprintf(stderr,
                     "FAIL: tracker MAE %.4f not below batch MAE %.4f under drift\n",
                     tracker_mae, batch_mae);
        return 1;
    }
    return 0;
}
