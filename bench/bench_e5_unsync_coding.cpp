// E5 — Section 4.1: reliable communication *without* synchronization is
// possible (Dobrushin), but "the capacity is quite low and in practice
// sophisticated coding techniques are required".
//
// Regenerates the comparison the section implies, at P_i = P_d sweeps:
//   * VT codes (single-indel blocks): reliable goodput under the channel;
//   * marker code + convolutional outer code: reliable goodput;
//   * Davey-MacKay watermark + GF(16) LDPC: reliable goodput;
//   * the no-feedback achievable-rate estimate (drift-lattice MC);
//   * the Theorem-1 bound and the feedback (Theorem-5-exact) rate.
//
// Goodput counts only exactly-decoded blocks (rate * block success ratio).

#include <cstdio>

#include "ccap/coding/marker_code.hpp"
#include "ccap/coding/vt_code.hpp"
#include "ccap/coding/watermark.hpp"
#include "ccap/core/capacity_bounds.hpp"
#include "ccap/info/deletion_bounds.hpp"

namespace {

using namespace ccap;
using coding::Bits;

double vt_goodput(double rate_param, util::Rng& rng) {
    const coding::VtCode vt(16, 0);
    const info::DriftParams dp{rate_param, rate_param, 0.0, 2, 32, 10};
    std::size_t ok = 0, trials = 40;
    for (std::size_t t = 0; t < trials; ++t) {
        const Bits info = coding::random_bits(vt.data_bits(), 0xE50 + t);
        const auto rx = info::simulate_drift_channel(vt.encode(info), dp, rng);
        const auto res = vt.decode(rx);
        if (res.status == coding::VtStatus::ok && res.info == info) ++ok;
    }
    return vt.rate() * static_cast<double>(ok) / static_cast<double>(trials);
}

double marker_goodput(double rate_param, util::Rng& rng) {
    coding::MarkerParams mp;
    mp.marker = {0, 1, 1};
    mp.period = 4;
    const coding::MarkerCode marker(mp);
    const coding::ConvolutionalCode outer({0b111, 0b101}, 3);
    const info::DriftParams dp{rate_param, rate_param, 0.0, 2, 32, 10};
    constexpr std::size_t kInfo = 48;
    std::size_t ok = 0, trials = 12, tx_bits = 0;
    for (std::size_t t = 0; t < trials; ++t) {
        const Bits info = coding::random_bits(kInfo, 0xE51 + t);
        const Bits tx = marker.encode_with_outer(outer, info);
        tx_bits = tx.size();
        const auto rx = info::simulate_drift_channel(tx, dp, rng);
        if (marker.decode_with_outer(outer, rx, kInfo, dp) == info) ++ok;
    }
    const double rate = static_cast<double>(kInfo) / static_cast<double>(tx_bits);
    return rate * static_cast<double>(ok) / static_cast<double>(trials);
}

double watermark_goodput(double rate_param, util::Rng& rng) {
    coding::WatermarkParams wp;
    wp.bits_per_symbol = 4;
    wp.chunk_bits = 6;
    wp.num_symbols = 48;
    wp.num_checks = 16;
    const coding::WatermarkCode code(wp);
    const info::DriftParams dp{rate_param, rate_param, 0.0, 2, 48, 10};
    std::size_t ok = 0, trials = 8;
    for (std::size_t t = 0; t < trials; ++t) {
        const Bits info = coding::random_bits(code.info_bits(), 0xE52 + t);
        const auto rx = info::simulate_drift_channel(code.encode(info), dp, rng);
        const auto res = code.decode(rx, dp);
        if (res.ldpc_converged && res.info == info) ++ok;
    }
    return code.rate() * static_cast<double>(ok) / static_cast<double>(trials);
}

}  // namespace

int main() {
    std::printf("E5: unsynchronized vs synchronized communication (binary, P_i = P_d)\n");
    std::printf("%-8s %8s %8s %10s %10s %10s %8s\n", "P_d=P_i", "VT(16)", "marker",
                "watermark", "MC-rate", "feedback", "Thm1");

    util::Rng rng(0xE5);
    for (const double r : {0.002, 0.005, 0.01, 0.02, 0.05}) {
        const core::DiChannelParams p{r, r, 0.0, 1};
        util::Rng mc_rng(0xE5F0);
        info::DriftParams dp{r, r, 0.0, 2, 48, 10};
        const double mc = info::iid_mutual_information_rate(dp, 96, 10, mc_rng).rate;
        std::printf("%-8.3f %8.4f %8.4f %10.4f %10.4f %10.4f %8.4f\n", r, vt_goodput(r, rng),
                    marker_goodput(r, rng), watermark_goodput(r, rng), mc,
                    core::counter_protocol_exact_rate(p), core::theorem1_upper_bound(p));
    }
    std::printf(
        "\nShape check: every unsynchronized scheme sits far below the feedback\n"
        "rate and the Theorem-1 bound; coded schemes stay reliable while the\n"
        "blind channel would not — Section 4.1's \"possible but not as effective\".\n");
    return 0;
}
