// X1 (extension ablation) — input-process design choice for no-feedback
// rates: iid uniform inputs vs first-order Markov (run-length-biased)
// inputs on the deletion channel.
//
// The paper's Section 4.1 cites numerical capacity bounds for
// synchronization-error channels ([18][19]); the modern refinement (Davey &
// MacKay; Diggavi & Grossglauser) is that correlated inputs beat iid ones
// precisely because runs survive deletions. This bench quantifies the
// effect with the joint (drift x symbol) lattice.

#include <cstdio>

#include "ccap/info/deletion_bounds.hpp"

int main() {
    using namespace ccap;

    constexpr std::size_t kBlock = 96;
    constexpr std::size_t kBlocks = 16;
    std::printf("X1: iid vs Markov inputs on the binary deletion channel "
                "[achievable bits/use, blocks of %zu]\n",
                kBlock);
    std::printf("%-6s %10s", "P_d", "iid");
    for (const double stay : {0.6, 0.75, 0.85, 0.95}) std::printf("   stay=%.2f", stay);
    std::printf("   %10s\n", "erasure UB");

    for (const double pd : {0.05, 0.1, 0.2, 0.3, 0.4, 0.5}) {
        info::DriftParams p;
        p.p_d = pd;
        util::Rng rng(0xA1);
        const auto iid = info::iid_mutual_information_rate(p, kBlock, kBlocks, rng);
        std::printf("%-6.2f %10.4f", pd, iid.rate);
        for (const double stay : {0.6, 0.75, 0.85, 0.95}) {
            util::Rng rng2(0xA1);
            const auto mkv = info::markov_mutual_information_rate(
                p, info::MarkovSource::binary_repeat(stay), kBlock, kBlocks, rng2);
            std::printf("   %9.4f", mkv.rate);
        }
        std::printf("   %10.4f\n", info::erasure_upper_bound(pd));
    }
    std::printf("\nShape check: at low P_d iid inputs are near-optimal; as deletions\n"
                "dominate, run-biased Markov inputs pull ahead (the crossover sits\n"
                "around P_d ~ 0.2-0.3), while everything stays under the erasure bound.\n");
    return 0;
}
