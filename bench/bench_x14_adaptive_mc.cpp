// X14 — adaptive-precision Monte-Carlo: blocks saved at matched precision.
//
// The fixed-block MC estimator spends the same num_blocks at every
// capacity point, so a uniform schedule able to hit a SEM target at the
// noisiest point of a sweep overpays everywhere else. The adaptive driver
// (McOptions::target_sem) runs rounds until each point's own fold-order
// SEM reaches the target, and the cross-point scheduler in
// iid_mutual_information_rate_points grants top-up rounds where the
// variance actually is. This harness quantifies the saving on a
// heterogeneous-variance (P_d, P_i) grid.
//
// The matched-precision baseline is self-calibrating: after the adaptive
// run, N_fixed = max_i blocks_i is exactly the uniform per-point count a
// fixed schedule needs so that its worst point reaches the precision the
// adaptive run delivered everywhere. blocks_saved is then
// N_fixed * npoints / sum_i blocks_i.
//
// Correctness gates before any timing (exit 1 on violation):
//   * every adaptive point bit-identical to a standalone fixed-mode run of
//     the same (point, spent-blocks) pair — the tentpole identity,
//   * the whole adaptive sweep (values AND spent counts) bit-identical at
//     1 vs 8 worker threads,
//   * target_sem = 0 bit-identical to the historical fixed behavior.
//
// Emits BENCH_JSON and persists BENCH_adaptive_mc.json (gated by
// scripts/bench_compare.py); `--smoke` writes BENCH_adaptive_mc_smoke.json
// so ctest runs never clobber the checked-in full-size baseline.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "ccap/info/deletion_bounds.hpp"
#include "ccap/util/rng.hpp"

namespace {

using ccap::info::CapacityPoint;
using ccap::info::DriftParams;
using ccap::info::McOptions;
using ccap::info::MiEstimate;

bool bit_identical(const MiEstimate& a, const MiEstimate& b) {
    return std::memcmp(&a.rate, &b.rate, sizeof(double)) == 0 &&
           std::memcmp(&a.sem, &b.sem, sizeof(double)) == 0 && a.blocks == b.blocks &&
           a.block_len == b.block_len && a.converged == b.converged;
}

std::vector<CapacityPoint> make_grid(bool smoke) {
    // A capacity sweep spans both regimes: mid-deletion rows where the MI
    // samples are noisy (hundreds of blocks to pin down), and the
    // capacity-zero plateau past the deletion threshold where every block
    // returns the same clamped value and the pilot round already suffices —
    // the heterogeneity the allocator exists to exploit.
    const std::vector<double> pds =
        smoke ? std::vector<double>{0.02, 0.2, 0.4}
              : std::vector<double>{0.02, 0.1, 0.2, 0.3, 0.4, 0.5};
    const std::vector<double> pis =
        smoke ? std::vector<double>{0.0, 0.1} : std::vector<double>{0.0, 0.05, 0.1};
    std::vector<CapacityPoint> pts;
    std::uint64_t seed = 0x14;
    for (double pd : pds)
        for (double pi : pis) pts.push_back({DriftParams{pd, pi, 0.0, 2, 8, 4}, seed++});
    return pts;
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--smoke") smoke = true;

    const std::vector<CapacityPoint> pts = make_grid(smoke);
    McOptions adaptive;
    adaptive.block_len = smoke ? 16 : 48;
    adaptive.num_blocks = smoke ? 4 : 8;  // round size in adaptive mode
    adaptive.target_sem = smoke ? 0.02 : 0.008;
    adaptive.max_blocks = smoke ? 64 : 1024;

    ccap::bench::BenchJson json(smoke ? "adaptive_mc_smoke" : "adaptive_mc");
    json.field("points", static_cast<std::uint64_t>(pts.size()));
    json.field("block_len", static_cast<std::uint64_t>(adaptive.block_len));
    json.field("round", static_cast<std::uint64_t>(ccap::info::mc_round_blocks(adaptive)));
    json.field("target_sem", adaptive.target_sem);
    json.field("max_blocks", static_cast<std::uint64_t>(adaptive.max_blocks));

    std::printf("X14: adaptive-precision MC — variance-aware early stopping\n");
    std::printf("  %zu points, round %zu x %zu symbols, target sem %.4g, cap %zu\n",
                pts.size(), ccap::info::mc_round_blocks(adaptive), adaptive.block_len,
                adaptive.target_sem, ccap::info::mc_block_cap(adaptive));

    // ---- Identity gates (before any timing) -------------------------------
    const std::vector<MiEstimate> out = ccap::info::iid_mutual_information_rate_points(
        pts, adaptive);

    bool standalone_identical = true;
    for (std::size_t i = 0; i < pts.size(); ++i) {
        McOptions fixed = adaptive;
        fixed.target_sem = 0.0;
        fixed.num_blocks = out[i].blocks;
        fixed.threads = 1;
        ccap::util::Rng rng(pts[i].seed);
        MiEstimate standalone =
            ccap::info::iid_mutual_information_rate(pts[i].params, fixed, rng);
        standalone.converged = out[i].converged;  // fixed mode has no target
        standalone_identical = standalone_identical && bit_identical(out[i], standalone);
    }

    bool thread_identical = true;
    {
        McOptions serial = adaptive;
        serial.threads = 1;
        const std::vector<MiEstimate> s =
            ccap::info::iid_mutual_information_rate_points(pts, serial);
        McOptions wide = adaptive;
        wide.threads = 8;
        const std::vector<MiEstimate> w =
            ccap::info::iid_mutual_information_rate_points(pts, wide);
        for (std::size_t i = 0; i < pts.size(); ++i)
            thread_identical = thread_identical && bit_identical(s[i], w[i]) &&
                               bit_identical(s[i], out[i]);
    }

    bool fixed_mode_identical = true;
    {
        // target_sem = 0 must leave the historical fixed path untouched,
        // whatever the new knobs say.
        McOptions plain;
        plain.block_len = adaptive.block_len;
        plain.num_blocks = adaptive.num_blocks;
        McOptions decorated = plain;
        decorated.target_sem = 0.0;
        decorated.max_blocks = 5;
        decorated.point_budget = 3;
        const std::vector<MiEstimate> a =
            ccap::info::iid_mutual_information_rate_points(pts, plain);
        const std::vector<MiEstimate> b =
            ccap::info::iid_mutual_information_rate_points(pts, decorated);
        for (std::size_t i = 0; i < pts.size(); ++i)
            fixed_mode_identical = fixed_mode_identical && bit_identical(a[i], b[i]);
    }
    std::printf("  identity: standalone %s, threads %s, fixed-mode %s\n",
                standalone_identical ? "yes" : "NO", thread_identical ? "yes" : "NO",
                fixed_mode_identical ? "yes" : "NO");
    json.field("standalone_identical", standalone_identical ? 1 : 0);
    json.field("thread_identical", thread_identical ? 1 : 0);
    json.field("fixed_mode_identical", fixed_mode_identical ? 1 : 0);

    // ---- Blocks saved at matched precision --------------------------------
    std::size_t adaptive_total = 0, n_fixed = 0;
    bool all_converged = true;
    for (const MiEstimate& e : out) {
        adaptive_total += e.blocks;
        n_fixed = std::max(n_fixed, e.blocks);
        all_converged = all_converged && e.converged;
    }
    const std::size_t fixed_total = n_fixed * pts.size();
    const double blocks_saved =
        static_cast<double>(fixed_total) / static_cast<double>(adaptive_total);

    std::printf("  %8s %8s %10s %10s %10s %6s\n", "P_d", "P_i", "rate", "sem", "blocks",
                "conv");
    for (std::size_t i = 0; i < pts.size(); ++i)
        std::printf("  %8.2f %8.2f %10.4f %10.4f %10zu %6s\n", pts[i].params.p_d,
                    pts[i].params.p_i, out[i].rate, out[i].sem, out[i].blocks,
                    out[i].converged ? "yes" : "NO");
    std::printf("  adaptive total %zu blocks; matched-precision fixed needs %zu x %zu = %zu"
                " (%.2fx saved)\n",
                adaptive_total, n_fixed, pts.size(), fixed_total, blocks_saved);

    // ---- Wall clock at the two schedules ----------------------------------
    McOptions fixed = adaptive;
    fixed.target_sem = 0.0;
    fixed.num_blocks = n_fixed;
    ccap::bench::WallTimer fixed_timer;
    const std::vector<MiEstimate> fixed_out =
        ccap::info::iid_mutual_information_rate_points(pts, fixed);
    const double fixed_sec = fixed_timer.seconds();
    ccap::bench::WallTimer adaptive_timer;
    const std::vector<MiEstimate> adaptive_again =
        ccap::info::iid_mutual_information_rate_points(pts, adaptive);
    const double adaptive_sec = adaptive_timer.seconds();
    if (fixed_out.size() != adaptive_again.size()) std::printf("# impossible\n");
    std::printf("  fixed %zu-block sweep: %.3fs; adaptive sweep: %.3fs (%.2fx)\n", n_fixed,
                fixed_sec, adaptive_sec, fixed_sec / adaptive_sec);

    json.field("blocks_adaptive_total", static_cast<std::uint64_t>(adaptive_total));
    json.field("blocks_fixed_total", static_cast<std::uint64_t>(fixed_total));
    json.field("n_fixed", static_cast<std::uint64_t>(n_fixed));
    json.field("blocks_saved", blocks_saved);
    json.field("fixed_seconds", fixed_sec);
    json.field("adaptive_seconds", adaptive_sec);
    json.field("all_converged", all_converged ? 1 : 0);
    json.write();

    if (!standalone_identical || !thread_identical || !fixed_mode_identical) {
        std::fprintf(stderr, "FAIL: adaptive MC identity gates violated\n");
        return 1;
    }
    if (!smoke && blocks_saved < 3.0) {
        std::fprintf(stderr, "FAIL: blocks saved %.2fx < 3x at matched precision\n",
                     blocks_saved);
        return 1;
    }
    if (!smoke && !all_converged) {
        std::fprintf(stderr, "FAIL: some points hit the block cap before the target\n");
        return 1;
    }
    return 0;
}
