// X11 — batched structure-of-arrays lattice vs the scalar engine.
//
// The scalar LatticeEngine (X10) already removed allocations and banding
// overhead; what is left on the table is instruction-level parallelism.
// BatchLatticeEngine advances B same-shape sequences in lockstep with
// [drift][lane] rows, computing the per-row window and transition weights
// once per row instead of once per sequence, and turning the hot inner
// loop into a contiguous lane sweep. This harness measures what that buys
// on Monte-Carlo shaped work:
//
//   scalar — DriftHmm::log2_likelihood per pair through a reused workspace.
//   batch  — DriftHmm::log2_likelihood_batch over tiles of B pairs.
//
// Per-lane results are asserted bit-identical to the scalar engine at
// band_eps = 0 (memcmp on the doubles), and in banded mode the realized
// per-lane error is asserted within the certified slack — both are exit-1
// violations, so the timing numbers can never come from a wrong kernel.
// An end-to-end iid Monte-Carlo timing (McOptions::batch 1 vs auto) closes
// the loop on the estimator the batch engine was built for.
//
// Emits BENCH_JSON and persists BENCH_batch_lattice.json (gated by
// scripts/bench_compare.py); `--smoke` writes BENCH_batch_lattice_smoke.json
// so ctest runs never clobber the checked-in full-size baseline.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "ccap/info/batch_lattice.hpp"
#include "ccap/info/deletion_bounds.hpp"
#include "ccap/info/drift_hmm.hpp"
#include "ccap/info/lattice_engine.hpp"
#include "ccap/info/lattice_simd.hpp"
#include "ccap/util/cpu_features.hpp"
#include "ccap/util/rng.hpp"

namespace {

using namespace ccap::info;
using SymbolSpan = DriftHmm::SymbolSpan;

struct Pair {
    std::vector<std::uint8_t> tx, rx;
};

std::vector<Pair> make_pairs(const DriftParams& params, std::size_t n, std::size_t count,
                             std::uint64_t seed) {
    ccap::util::Rng rng(seed);
    std::vector<Pair> pairs(count);
    for (auto& p : pairs) {
        p.tx.resize(n);
        for (auto& s : p.tx)
            s = static_cast<std::uint8_t>(rng.uniform_below(params.alphabet));
        p.rx = simulate_drift_channel(p.tx, params, rng);
    }
    return pairs;
}

/// Pre-sliced lane views: tile t covers pairs [t*batch, (t+1)*batch).
struct Tiles {
    std::vector<std::vector<SymbolSpan>> tx, rx;
};

Tiles make_tiles(const std::vector<Pair>& pairs, std::size_t batch) {
    Tiles tiles;
    for (std::size_t b0 = 0; b0 < pairs.size(); b0 += batch) {
        const std::size_t b1 = std::min(pairs.size(), b0 + batch);
        std::vector<SymbolSpan> tx, rx;
        for (std::size_t i = b0; i < b1; ++i) {
            tx.emplace_back(pairs[i].tx);
            rx.emplace_back(pairs[i].rx);
        }
        tiles.tx.push_back(std::move(tx));
        tiles.rx.push_back(std::move(rx));
    }
    return tiles;
}

/// ns per transmitted symbol for one full sweep of `fn()`, `reps` sweeps,
/// with an untimed warm-up (arenas reach steady state, caches are hot).
template <typename Fn>
double time_ns_per_symbol(std::size_t symbols_per_sweep, std::size_t reps, Fn&& fn) {
    double sink = fn();
    ccap::bench::WallTimer timer;
    for (std::size_t r = 0; r < reps; ++r) sink += fn();
    const double sec = timer.seconds();
    if (sink == 42.0) std::printf("# impossible %g\n", sink);  // defeat dead-code elim
    return sec * 1e9 / static_cast<double>(symbols_per_sweep * reps);
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--smoke") smoke = true;

    DriftParams base;
    base.p_d = 0.01;
    base.p_i = 0.01;
    base.p_s = 0.02;
    base.alphabet = 2;
    base.max_insert_run = 8;

    struct Config {
        std::size_t n;
        int max_drift;
    };
    const std::vector<Config> grid =
        smoke ? std::vector<Config>{{64, 6}} : std::vector<Config>{{256, 8}, {1024, 16}};
    const std::vector<std::size_t> batches =
        smoke ? std::vector<std::size_t>{1, 4} : std::vector<std::size_t>{1, 4, 8, 16, 32};
    const std::size_t num_pairs = smoke ? 8 : 32;
    const double banded_eps = 1e-10;

    ccap::bench::BenchJson json(smoke ? "batch_lattice_smoke" : "batch_lattice");
    json.field("p_d", base.p_d).field("p_i", base.p_i).field("p_s", base.p_s);
    json.field("band_eps", banded_eps);
    json.field("batch", static_cast<std::uint64_t>(batches.back()));

    std::printf("X11: batched SoA lattice — lockstep lanes vs scalar sweeps\n");
    std::printf("%8s %8s %6s %14s %14s %10s %10s\n", "n", "drift", "B", "scalar ns/sym",
                "batch ns/sym", "speedup", "identical");

    bool all_identical = true;
    bool all_certified = true;
    double best_speedup_b8plus = 0.0;
    for (const Config& cfg : grid) {
        DriftParams params = base;
        params.max_drift = cfg.max_drift;
        params.band_eps = 0.0;
        const std::vector<Pair> pairs = make_pairs(params, cfg.n, num_pairs, 0xB11 + cfg.n);
        const DriftHmm hmm(params);
        DriftParams banded_params = params;
        banded_params.band_eps = banded_eps;
        const DriftHmm banded_hmm(banded_params);
        LatticeWorkspace ws;

        // Scalar reference values (also the bit-identity ground truth).
        std::vector<double> scalar_vals;
        for (const Pair& p : pairs)
            scalar_vals.push_back(hmm.log2_likelihood(p.tx, p.rx, ws));

        const std::size_t symbols = cfg.n * num_pairs;
        const std::size_t reps =
            smoke ? 2 : std::max<std::size_t>(3, 6'000'000 / symbols);
        const double scalar_ns = time_ns_per_symbol(symbols, reps, [&] {
            double acc = 0.0;
            for (const Pair& p : pairs) acc += hmm.log2_likelihood(p.tx, p.rx, ws);
            return acc;
        });

        const std::string cfg_tag =
            "_n" + std::to_string(cfg.n) + "_d" + std::to_string(cfg.max_drift);
        json.field("scalar_ns_sym" + cfg_tag, scalar_ns);

        for (const std::size_t batch : batches) {
            const Tiles tiles = make_tiles(pairs, batch);

            // Correctness before timing: every lane bit-identical to the
            // scalar engine, and the banded batch within certified slack.
            bool identical = true;
            for (std::size_t t = 0, i = 0; t < tiles.tx.size(); ++t) {
                const std::vector<BandedEvidence> got =
                    hmm.log2_likelihood_batch(tiles.tx[t], tiles.rx[t], ws);
                const std::vector<BandedEvidence> banded =
                    banded_hmm.log2_likelihood_batch(tiles.tx[t], tiles.rx[t], ws);
                for (std::size_t l = 0; l < got.size(); ++l, ++i) {
                    if (std::memcmp(&got[l].log2_evidence, &scalar_vals[i], sizeof(double)) != 0)
                        identical = false;
                    if (std::isfinite(scalar_vals[i]) &&
                        scalar_vals[i] - banded[l].log2_evidence > banded[l].log2_slack + 1e-6)
                        all_certified = false;
                }
            }
            all_identical = all_identical && identical;

            const double batch_ns = time_ns_per_symbol(symbols, reps, [&] {
                double acc = 0.0;
                for (std::size_t t = 0; t < tiles.tx.size(); ++t) {
                    const std::vector<BandedEvidence> ev =
                        hmm.log2_likelihood_batch(tiles.tx[t], tiles.rx[t], ws);
                    for (const BandedEvidence& e : ev) acc += e.log2_evidence;
                }
                return acc;
            });
            const double speedup = scalar_ns / batch_ns;
            if (batch >= 8) best_speedup_b8plus = std::max(best_speedup_b8plus, speedup);
            std::printf("%8zu %8d %6zu %14.1f %14.1f %9.2fx %10s\n", cfg.n, cfg.max_drift,
                        batch, scalar_ns, batch_ns, speedup, identical ? "yes" : "NO");
            const std::string tag = cfg_tag + "_b" + std::to_string(batch);
            json.field("batch_ns_sym" + tag, batch_ns);
            json.field("speedup" + tag, speedup);
        }
    }

    // SIMD-dispatch speedup: the same batched sweep once with the kernel
    // table pinned to the scalar reference path and once on the runtime-
    // dispatched vector path. This isolates what the explicit AVX2/AVX-512/
    // NEON lane kernels buy over the scalar rows at identical tiling —
    // the acceptance bar for the dispatch layer. Bit-identity of both paths
    // is already asserted above, so the faster number cannot come from a
    // different answer.
    {
        const Config cfg = grid.back();
        DriftParams params = base;
        params.max_drift = cfg.max_drift;
        params.band_eps = 0.0;
        const std::vector<Pair> pairs = make_pairs(params, cfg.n, num_pairs, 0xB11 + cfg.n);
        const DriftHmm hmm(params);
        LatticeWorkspace ws;
        const std::size_t batch = batches.back();
        const Tiles tiles = make_tiles(pairs, batch);
        const std::size_t symbols = cfg.n * num_pairs;
        const std::size_t reps = smoke ? 2 : std::max<std::size_t>(3, 6'000'000 / symbols);

        const auto time_batch = [&] {
            return time_ns_per_symbol(symbols, reps, [&] {
                double acc = 0.0;
                for (std::size_t t = 0; t < tiles.tx.size(); ++t) {
                    const std::vector<BandedEvidence> ev =
                        hmm.log2_likelihood_batch(tiles.tx[t], tiles.rx[t], ws);
                    for (const BandedEvidence& e : ev) acc += e.log2_evidence;
                }
                return acc;
            });
        };

        const ccap::util::SimdPath active = ccap::util::active_simd_path();
        const char* active_name = ccap::util::simd_path_name(active);
        const double simd_ns = time_batch();
        ccap::util::force_simd_path(ccap::util::SimdPath::scalar);
        const double scalar_kernel_ns = time_batch();
        ccap::util::force_simd_path(active);
        const double kernel_speedup = scalar_kernel_ns / simd_ns;
        std::printf("  SIMD dispatch (n=%zu, B=%zu): scalar-kernel %.1f ns/sym, "
                    "%s %.1f ns/sym (%.2fx)\n",
                    cfg.n, batch, scalar_kernel_ns, active_name, simd_ns, kernel_speedup);
        json.field("simd_scalar_kernel_ns_sym", scalar_kernel_ns);
        json.field("simd_kernel_ns_sym", simd_ns);
        json.field("simd_kernel_speedup", kernel_speedup);
    }

    // End-to-end Monte-Carlo: the estimator the batch engine was built for
    // (single-thread so the batch effect is not diluted by scheduling).
    {
        DriftParams params = base;
        params.max_drift = smoke ? 6 : 12;
        const std::size_t block_len = smoke ? 48 : 256;
        const std::size_t num_blocks = smoke ? 4 : 16;
        McOptions opts;
        opts.block_len = block_len;
        opts.num_blocks = num_blocks;
        opts.threads = 1;

        const auto run_mc = [&](std::size_t batch) {
            opts.batch = batch;
            ccap::util::Rng rng(0xE14);
            ccap::bench::WallTimer timer;
            const MiEstimate est = iid_mutual_information_rate(params, opts, rng);
            const double sec = timer.seconds();
            if (est.rate == -1.0) std::printf("# impossible\n");
            return sec * 1e9 / static_cast<double>(block_len * num_blocks);
        };
        const double mc_scalar_ns = run_mc(1);
        const double mc_auto_ns = run_mc(0);
        const std::size_t auto_batch = resolved_mc_batch(opts, params);
        std::printf("  iid MC (n=%zu, blocks=%zu, 1 thread): scalar %.1f ns/sym, "
                    "batch=%zu %.1f ns/sym (%.2fx)\n",
                    block_len, num_blocks, mc_scalar_ns, auto_batch, mc_auto_ns,
                    mc_scalar_ns / mc_auto_ns);
        json.field("mc_scalar_ns_sym", mc_scalar_ns);
        json.field("mc_batch_ns_sym", mc_auto_ns);
        json.field("mc_auto_batch", static_cast<std::uint64_t>(auto_batch));
        json.field("mc_speedup", mc_scalar_ns / mc_auto_ns);
    }

    json.field("bit_identical", all_identical ? 1 : 0);
    json.field("error_certified", all_certified ? 1 : 0);
    if (!smoke) json.field("headline_speedup_b8plus", best_speedup_b8plus);
    json.write();

    if (!all_identical) {
        std::fprintf(stderr,
                     "FAIL: batched lanes are not bit-identical to the scalar engine\n");
        return 1;
    }
    if (!all_certified) {
        std::fprintf(stderr, "FAIL: realized banded error exceeded the certified slack\n");
        return 1;
    }
    return 0;
}
