// Machine-readable timing output for the bench harnesses.
//
// Each harness section that wants to be tracked across PRs builds a
// BenchJson, adds flat key/value fields, and calls write(): the record is
// echoed to stdout as one `BENCH_JSON {...}` line (greppable in CI logs)
// and persisted as BENCH_<name>.json in the working directory, so perf
// trajectories can be diffed commit to commit without scraping tables.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ccap/util/cpu_features.hpp"

namespace ccap::bench {

/// Monotonic wall-clock stopwatch.
class WallTimer {
public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}
    void reset() { start_ = std::chrono::steady_clock::now(); }
    [[nodiscard]] double seconds() const {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    }

private:
    std::chrono::steady_clock::time_point start_;
};

/// Flat-object JSON record writer (insertion order preserved).
class BenchJson {
public:
    explicit BenchJson(std::string name) : name_(std::move(name)) {
        field("name", name_);
        // Provenance fields so checked-in BENCH_* records are attributable:
        // the commit the binary was built from (CCAP_GIT_REV is injected by
        // bench/CMakeLists.txt) and the hardware thread budget.
#ifdef CCAP_GIT_REV
        field("git_rev", std::string(CCAP_GIT_REV));
#else
        field("git_rev", std::string("unknown"));
#endif
        field("threads", static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
        // SIMD provenance: the dispatched kernel path the run used and the
        // features the CPU reported. bench_compare.py refuses comparisons
        // across different "simd" values the same way it refuses
        // cross-fault-profile ones — timings from different vector widths
        // are not comparable.
        field("simd", std::string(util::simd_path_name(util::active_simd_path())));
        field("cpu", util::cpu_feature_string());
    }

    BenchJson& field(const std::string& key, const std::string& value) {
        entries_.emplace_back(key, "\"" + value + "\"");
        return *this;
    }
    BenchJson& field(const std::string& key, double value) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6g", value);
        entries_.emplace_back(key, buf);
        return *this;
    }
    BenchJson& field(const std::string& key, std::uint64_t value) {
        entries_.emplace_back(key, std::to_string(value));
        return *this;
    }
    BenchJson& field(const std::string& key, int value) {
        entries_.emplace_back(key, std::to_string(value));
        return *this;
    }

    /// Render `{"k":v,...}` in insertion order.
    [[nodiscard]] std::string render() const {
        std::string out = "{";
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (i) out += ",";
            out += "\"" + entries_[i].first + "\":" + entries_[i].second;
        }
        out += "}";
        return out;
    }

    /// Echo to stdout and persist BENCH_<name>.json next to the binary's CWD.
    void write() const {
        const std::string body = render();
        std::printf("BENCH_JSON %s\n", body.c_str());
        const std::string path = "BENCH_" + name_ + ".json";
        if (std::FILE* f = std::fopen(path.c_str(), "w")) {
            std::fprintf(f, "%s\n", body.c_str());
            std::fclose(f);
        } else {
            std::fprintf(stderr, "BENCH_JSON: could not write %s\n", path.c_str());
        }
    }

private:
    std::string name_;
    std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace ccap::bench
