// E7 — Section 4.3 recipe: "first use traditional methods to estimate the
// physical capacity C ... the real capacity can then be estimated as
// C(1 - P_d)".
//
// Regenerates a table of classic covert-channel capacity estimates — the
// related-work models the paper builds on — and applies the correction at
// several deletion rates:
//   * BSC / Z-channel storage channels (Blahut-Arimoto / closed form);
//   * Moskowitz's Simple Timing Channel (characteristic equation);
//   * Moskowitz-Greenwald-Kang timed Z-channel (per-unit-cost BA);
//   * Millen's finite-state noiseless channel (spectral radius).

#include <cstdio>

#include "ccap/core/capacity_bounds.hpp"
#include "ccap/info/blahut_arimoto.hpp"
#include "ccap/info/fsm_capacity.hpp"
#include "ccap/estimate/analyzer.hpp"
#include "ccap/info/timing.hpp"

int main() {
    using namespace ccap;

    struct Entry {
        const char* label;
        double traditional;  // bits/use or bits/unit-time
    };

    const double stc[] = {1.0, 2.0};  // STC with two service times
    info::FsmChannel millen(2);
    millen.add_edge(0, 0);
    millen.add_edge(0, 1);
    millen.add_edge(1, 0);

    const Entry entries[] = {
        {"noiseless 1-bit storage", 1.0},
        {"BSC(0.05) storage", info::blahut_arimoto(info::make_bsc(0.05)).capacity},
        {"BSC(0.11) storage", info::blahut_arimoto(info::make_bsc(0.11)).capacity},
        {"Z-channel(0.5) storage", info::z_channel_capacity(0.5)},
        {"STC durations {1,2}", info::stc_capacity(stc)},
        {"timed-Z p=0.1 t={1,2}", info::timed_z_capacity(0.1, 1.0, 2.0).capacity_per_time},
        {"Millen FSM (fib machine)", millen.capacity()},
    };

    std::printf("E7: traditional estimates corrected by (1 - P_d)   [bits/use or bits/t]\n");
    std::printf("%-26s %12s", "channel model", "traditional");
    for (const double pd : {0.1, 0.25, 0.5}) std::printf("   P_d=%.2f", pd);
    std::printf("\n");

    for (const Entry& e : entries) {
        std::printf("%-26s %12.4f", e.label, e.traditional);
        for (const double pd : {0.1, 0.25, 0.5}) {
            const core::DiChannelParams p{pd, 0.0, 0.0, 1};
            std::printf("   %8.4f", core::degraded_capacity(e.traditional, p));
        }
        std::printf("\n");
    }
    // The "informal method" of the paper's reference [3] (NCSC-TG-030 /
    // Tsai-Gligor): bandwidth from measured operation timings, corrected
    // the same way.
    estimate::InformalTimings timings;
    timings.bits_per_transfer = 1.0;
    timings.sender_op_seconds = 0.0005;
    timings.receiver_op_seconds = 0.0008;
    timings.context_switch_seconds = 0.0030;
    std::printf("%-26s %12.4f", "informal (TG-030) [b/s]",
                estimate::informal_bandwidth(timings));
    for (const double pd : {0.1, 0.25, 0.5}) {
        const core::DiChannelParams p{pd, 0.0, 0.0, 1};
        std::printf("   %8.4f", estimate::corrected_informal_bandwidth(timings, p));
    }
    std::printf("\n");

    std::printf("\nShape check: every column scales the traditional estimate by exactly\n"
                "(1 - P_d) — the paper's capacity-degradation law, uniform across models,\n"
                "including the informal TG-030 bandwidth estimate of reference [3].\n");
    return 0;
}
