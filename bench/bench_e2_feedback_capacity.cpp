// E2 — Theorems 2/3: with perfect feedback, the resend-until-acknowledged
// protocol achieves the erasure capacity of a deletion channel.
//
// Regenerates the achieved-rate curve of the executable stop-and-wait
// protocol over a P_d sweep and reports the efficiency relative to the
// bound (which Theorem 3 says tends to 1), plus the measured channel-use
// inflation vs the 1/(1-P_d) analysis.

#include <cstdio>

#include "ccap/core/capacity_bounds.hpp"
#include "ccap/core/feedback_protocols.hpp"
#include "ccap/core/protocol_analysis.hpp"

int main() {
    using namespace ccap;

    constexpr std::size_t kMessage = 40000;
    std::printf("E2: Theorem 3 — stop-and-wait with perfect feedback (N=1, %zu symbols)\n",
                kMessage);
    std::printf("%-6s %10s %12s %12s %12s %10s\n", "P_d", "uses", "E[uses]", "rate b/use",
                "N(1-P_d)", "efficiency");

    for (const double pd : {0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}) {
        const core::DiChannelParams p{pd, 0.0, 0.0, 1};
        core::DeletionInsertionChannel ch(p, 0xE2);
        util::Rng rng(0xE2F0);
        std::vector<std::uint32_t> msg(kMessage);
        for (auto& s : msg) s = static_cast<std::uint32_t>(rng.uniform_below(2));
        const auto run = core::run_stop_and_wait(ch, msg);
        const double bound = core::theorem3_feedback_capacity(p);
        const double rate = run.measured_info_rate(1);
        std::printf("%-6.2f %10llu %12.0f %12.4f %12.4f %10.4f\n", pd,
                    static_cast<unsigned long long>(run.channel_uses),
                    core::stop_and_wait_expected_uses(p, kMessage), rate, bound,
                    bound > 0 ? rate / bound : 0.0);
    }
    std::printf("\nShape check: efficiency ~ 1.00 at every deletion rate — the bound of\n"
                "Theorem 2 is achieved (Theorem 3), so it is the channel's capacity.\n");
    return 0;
}
