// E4 — eqs (6)-(7): asymptotic convergence of the feedback lower bound to
// the erasure upper bound as the symbol width N grows (at P_i = P_d).
//
// Regenerates the ratio C_lower / C_upper as a function of N for several
// deletion rates, for both the paper's Theorem-5 expression and our exact
// protocol analysis, plus a Monte-Carlo measurement at selected points.
//
// Second half: the deterministic-parallelism benchmark for the repo's
// hottest kernel, the drift-lattice Monte-Carlo MI estimator. The same
// root seed runs with threads=1 and threads=hardware; the estimates must
// be bit-identical and the wall-clock ratio is the speedup recorded in
// BENCH_mc_parallel.json.

#include <cstdio>
#include <thread>

#include "bench_json.hpp"
#include "ccap/core/capacity_bounds.hpp"
#include "ccap/core/feedback_protocols.hpp"
#include "ccap/info/deletion_bounds.hpp"
#include "ccap/util/thread_pool.hpp"

namespace {

/// Monte-Carlo spot-check row (independent per-row seeding).
std::string mc_spot_row(unsigned n) {
    using namespace ccap;
    const double pd = 0.05;
    const core::DiChannelParams p{pd, pd, 0.0, n};
    core::DeletionInsertionChannel ch(p, 0xE4);
    util::Rng rng(0xE4F0 + n);
    std::vector<std::uint32_t> msg(30000);
    for (auto& s : msg) s = static_cast<std::uint32_t>(rng.uniform_below(p.alphabet()));
    const auto run = core::run_counter_protocol(ch, msg);
    char line[96];
    std::snprintf(line, sizeof line, "%-3u %-6.2f %10.4f\n", n, pd,
                  run.measured_info_rate(n) / core::theorem1_upper_bound(p));
    return line;
}

}  // namespace

int main() {
    using namespace ccap;

    std::printf("E4: eq (7) — convergence of C_lower/C_upper to 1 as N grows (P_i = P_d)\n");
    std::printf("%-3s", "N");
    for (const double pd : {0.02, 0.05, 0.1, 0.2})
        std::printf("   thm5(%.2f) exact(%.2f)", pd, pd);
    std::printf("\n");

    for (const unsigned n : {1U, 2U, 3U, 4U, 6U, 8U, 12U, 16U}) {
        std::printf("%-3u", n);
        for (const double pd : {0.02, 0.05, 0.1, 0.2}) {
            const core::DiChannelParams p{pd, pd, 0.0, n};
            const double upper = core::theorem1_upper_bound(p);
            std::printf("   %10.4f %11.4f", core::theorem5_convergence_ratio(pd, n),
                        core::counter_protocol_exact_rate(p) / upper);
        }
        std::printf("\n");
    }

    std::printf("\nMonte-Carlo spot checks (measured protocol rate / Thm1 bound):\n");
    std::printf("%-3s %-6s %10s\n", "N", "P_d=P_i", "measured");
    {
        // Grid-level parallelism: the four spot checks are independent.
        const std::vector<unsigned> widths = {1U, 4U, 8U, 12U};
        std::vector<std::string> rows(widths.size());
        util::parallel_for(util::ThreadPool::shared(), widths.size(),
                           [&](std::size_t i) { rows[i] = mc_spot_row(widths[i]); });
        for (const auto& row : rows) std::fputs(row.c_str(), stdout);
    }
    std::printf("\nShape check: every column increases monotonically in N — the paper's\n"
                "expression towards 1 (its eq (7)), the exact protocol analysis towards\n"
                "its own limit 1 - P_i/(1-P_d) (docs/THEORY.md sec. 3). Either way,\n"
                "wider symbols amortize the synchronization overhead, which is the\n"
                "operational content of the paper's convergence claim.\n");

    // ---- Parallel Monte-Carlo MI benchmark (BENCH_mc_parallel.json) ----
    info::DriftParams dp;
    dp.p_d = 0.05;
    dp.p_i = 0.05;
    info::McOptions opts;
    opts.block_len = 128;
    opts.num_blocks = 32;
    constexpr std::uint64_t kSeed = 0xE4AC;

    opts.threads = 1;
    util::Rng serial_rng(kSeed);
    bench::WallTimer serial_timer;
    const auto serial = info::iid_mutual_information_rate(dp, opts, serial_rng);
    const double serial_sec = serial_timer.seconds();

    opts.threads = 0;  // one lane per hardware thread
    util::Rng parallel_rng(kSeed);
    bench::WallTimer parallel_timer;
    const auto parallel = info::iid_mutual_information_rate(dp, opts, parallel_rng);
    const double parallel_sec = parallel_timer.seconds();

    const bool identical = serial.rate == parallel.rate && serial.sem == parallel.sem;
    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("\nParallel MC MI (P_d=P_i=%.2f, %zu x %zu-symbol blocks):\n", dp.p_d,
                opts.num_blocks, opts.block_len);
    std::printf("  threads=1: rate %.6f (sem %.6f) in %.3fs\n", serial.rate, serial.sem,
                serial_sec);
    std::printf("  threads=%u: rate %.6f (sem %.6f) in %.3fs  -> speedup %.2fx, %s\n", hw,
                parallel.rate, parallel.sem, parallel_sec,
                parallel_sec > 0.0 ? serial_sec / parallel_sec : 0.0,
                identical ? "bit-identical" : "MISMATCH");

    bench::BenchJson json("mc_parallel");
    json.field("p_d", dp.p_d)
        .field("p_i", dp.p_i)
        .field("block_len", static_cast<std::uint64_t>(opts.block_len))
        .field("blocks", static_cast<std::uint64_t>(opts.num_blocks))
        .field("hardware_threads", static_cast<std::uint64_t>(hw))
        .field("batch", static_cast<std::uint64_t>(info::resolved_mc_batch(opts, dp)))
        .field("serial_sec", serial_sec)
        .field("parallel_sec", parallel_sec)
        .field("speedup", parallel_sec > 0.0 ? serial_sec / parallel_sec : 0.0)
        .field("rate", serial.rate)
        .field("sem", serial.sem)
        .field("bit_identical", identical ? "true" : "false");
    json.write();
    return identical ? 0 : 1;
}
