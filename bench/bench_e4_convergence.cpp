// E4 — eqs (6)-(7): asymptotic convergence of the feedback lower bound to
// the erasure upper bound as the symbol width N grows (at P_i = P_d).
//
// Regenerates the ratio C_lower / C_upper as a function of N for several
// deletion rates, for both the paper's Theorem-5 expression and our exact
// protocol analysis, plus a Monte-Carlo measurement at selected points.

#include <cstdio>

#include "ccap/core/capacity_bounds.hpp"
#include "ccap/core/feedback_protocols.hpp"

int main() {
    using namespace ccap;

    std::printf("E4: eq (7) — convergence of C_lower/C_upper to 1 as N grows (P_i = P_d)\n");
    std::printf("%-3s", "N");
    for (const double pd : {0.02, 0.05, 0.1, 0.2})
        std::printf("   thm5(%.2f) exact(%.2f)", pd, pd);
    std::printf("\n");

    for (const unsigned n : {1U, 2U, 3U, 4U, 6U, 8U, 12U, 16U}) {
        std::printf("%-3u", n);
        for (const double pd : {0.02, 0.05, 0.1, 0.2}) {
            const core::DiChannelParams p{pd, pd, 0.0, n};
            const double upper = core::theorem1_upper_bound(p);
            std::printf("   %10.4f %11.4f", core::theorem5_convergence_ratio(pd, n),
                        core::counter_protocol_exact_rate(p) / upper);
        }
        std::printf("\n");
    }

    std::printf("\nMonte-Carlo spot checks (measured protocol rate / Thm1 bound):\n");
    std::printf("%-3s %-6s %10s\n", "N", "P_d=P_i", "measured");
    for (const unsigned n : {1U, 4U, 8U, 12U}) {
        const double pd = 0.05;
        const core::DiChannelParams p{pd, pd, 0.0, n};
        core::DeletionInsertionChannel ch(p, 0xE4);
        util::Rng rng(0xE4F0 + n);
        std::vector<std::uint32_t> msg(30000);
        for (auto& s : msg) s = static_cast<std::uint32_t>(rng.uniform_below(p.alphabet()));
        const auto run = core::run_counter_protocol(ch, msg);
        std::printf("%-3u %-6.2f %10.4f\n", n, pd,
                    run.measured_info_rate(n) / core::theorem1_upper_bound(p));
    }
    std::printf("\nShape check: every column increases monotonically in N — the paper's\n"
                "expression towards 1 (its eq (7)), the exact protocol analysis towards\n"
                "its own limit 1 - P_i/(1-P_d) (docs/THEORY.md sec. 3). Either way,\n"
                "wider symbols amortize the synchronization overhead, which is the\n"
                "operational content of the paper's convergence claim.\n");
    return 0;
}
