// X12 (extension) — graceful degradation under fault injection.
//
// The hardened protocols (feedback_protocols.hpp) promise two things the
// paper's perfect-feedback constructions cannot: reliability survives an
// imperfect return path, and throughput degrades smoothly — no cliff — as
// the ACK loss rate and the forward-channel fault profiles worsen. This
// bench measures both:
//   * stop-and-wait rate vs ACK loss, against the exact closed form
//     hardened_stop_and_wait_rate (THEORY.md §12);
//   * counter / go-back-N throughput under the named fault profiles
//     (storms, drift, stuck-at) relative to a fault-free run.
//
// Emits BENCH_JSON and persists BENCH_fault_injection.json (gated by
// scripts/bench_compare.py); `--smoke` writes
// BENCH_fault_injection_smoke.json so ctest runs never clobber the
// checked-in baseline. The record stamps "fault_profile" with the profile
// suite it was measured under — bench_compare.py refuses to diff records
// whose profile suites differ, so a baseline from one fault mix is never
// judged against a run of another.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "ccap/core/deletion_insertion_channel.hpp"
#include "ccap/core/fault_injection.hpp"
#include "ccap/core/feedback_protocols.hpp"
#include "ccap/core/protocol_analysis.hpp"

namespace {

using namespace ccap;

std::vector<std::uint32_t> make_message(std::size_t len, unsigned alphabet,
                                        std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<std::uint32_t> msg(len);
    for (auto& s : msg) s = static_cast<std::uint32_t>(rng.uniform_below(alphabet));
    return msg;
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--smoke") smoke = true;

    const std::size_t kMessage = smoke ? 2000 : 20000;
    const core::DiChannelParams p{0.2, 0.0, 0.0, 1};

    ccap::bench::BenchJson json(smoke ? "fault_injection_smoke" : "fault_injection");
    // Identity stamp: which fault-profile suite these numbers were measured
    // under. bench_compare.py treats a mismatch as incomparable, not as a
    // regression.
    json.field("fault_profile", std::string("none+storms+drift+stuck"));
    json.field("p_d", p.p_d);

    std::size_t runs = 0, reliable_runs = 0;

    // --- 1. Stop-and-wait rate vs ACK loss, against the closed form -------
    std::printf("X12: hardened stop-and-wait vs ACK loss "
                "(P_d=%.2f, delay=2, timeout=6, %zu symbols)\n\n",
                p.p_d, kMessage);
    std::printf("%-8s | %10s %10s %10s | %s\n", "p_loss", "measured", "predicted",
                "perfect", "reliable");
    for (const double loss : {0.0, 0.1, 0.2, 0.4}) {
        core::FeedbackLinkParams lp;
        lp.p_loss = loss;
        lp.delay = 2;
        core::HardenedOptions opt;
        opt.timeout = 6;
        const auto msg = make_message(kMessage, p.alphabet(), 0xF12);
        core::DeletionInsertionChannel channel(p, 0xF12A);
        core::FeedbackLink link(lp, 0xF12B);
        const auto run = core::run_hardened_stop_and_wait(channel, msg, link, opt);
        const double predicted = core::hardened_stop_and_wait_rate(p, lp, opt);
        const double perfect = (1.0 - p.p_d) / (1.0 + static_cast<double>(lp.delay));
        std::printf("%-8.2f | %10.4f %10.4f %10.4f | %s\n", loss,
                    run.measured_info_rate(1), predicted, perfect,
                    run.reliable ? "yes" : "NO");
        ++runs;
        reliable_runs += run.reliable ? 1 : 0;
        char key[48];
        std::snprintf(key, sizeof key, "saw_rate_loss%02.0f", loss * 100.0);
        json.field(key, run.measured_info_rate(1));
        std::snprintf(key, sizeof key, "saw_pred_loss%02.0f", loss * 100.0);
        json.field(key, predicted);
    }

    // --- 2. Counter / go-back-N throughput under the named profiles -------
    struct Named {
        const char* label;
        core::FaultProfile profile;
    };
    const std::vector<Named> profiles = {
        {"none", core::FaultProfile{}},
        {"storms", core::FaultProfile::storms(500, 50)},
        {"drift", core::FaultProfile::drifting(0.3, 400)},
        {"stuck", core::FaultProfile::stuck_at(300, 30, 0)},
    };
    core::FeedbackLinkParams lp;
    lp.p_loss = 0.1;
    lp.delay = 2;
    core::HardenedOptions opt;
    opt.timeout = 8;
    // The counter protocol's sender view lags by the report latency, and
    // every lagged use is garbage (documented in feedback_protocols.hpp) —
    // at delay 2 that intrinsic cost swamps the fault profiles this table
    // is about. Run it at its natural delay-0 configuration instead, so
    // the column isolates loss + profile degradation.
    core::FeedbackLinkParams lp_ctr = lp;
    lp_ctr.delay = 0;

    std::printf("\nfault profiles over a 10%%-lossy link "
                "(P_d=%.2f, gbn delay=2, ctr delay=0, timeout=8)\n\n",
                p.p_d);
    std::printf("%-8s | %10s %8s | %10s %8s\n", "profile", "gbn rate", "reliable",
                "ctr rate", "errors");
    for (const auto& [label, profile] : profiles) {
        const auto msg = make_message(kMessage, p.alphabet(), 0xF12C);

        core::DeletionInsertionChannel inner_g(p, 0xF12D);
        core::FaultyChannel ch_g(inner_g, profile, 0xF12E);
        core::FeedbackLink link_g(lp, 0xF12F);
        const auto gbn = core::run_hardened_go_back_n(ch_g, msg, link_g, opt);

        core::DeletionInsertionChannel inner_c(p, 0xF130);
        core::FaultyChannel ch_c(inner_c, profile, 0xF131);
        core::FeedbackLink link_c(lp_ctr, 0xF132);
        const auto ctr = core::run_hardened_counter_protocol(ch_c, msg, link_c, opt);

        std::printf("%-8s | %10.4f %8s | %10.4f %8zu\n", label,
                    gbn.measured_info_rate(1), gbn.reliable ? "yes" : "NO",
                    ctr.measured_info_rate(1), ctr.symbol_errors);
        runs += 2;
        // Deletion-style profiles must keep go-back-N fully reliable; the
        // stuck-at profile corrupts delivered symbols outright (no FEC
        // here), so its contract is completion with bounded errors instead.
        const bool deletion_style = std::string(label) != "stuck";
        reliable_runs += (deletion_style ? gbn.reliable
                                         : gbn.received.size() == msg.size() &&
                                               gbn.symbol_errors < kMessage / 4)
                             ? 1
                             : 0;
        reliable_runs += ctr.received.size() == msg.size() ? 1 : 0;
        json.field(std::string("gbn_rate_") + label, gbn.measured_info_rate(1));
        json.field(std::string("ctr_rate_") + label, ctr.measured_info_rate(1));
    }

    // Fraction of runs that met their reliability contract: a robustness
    // metric (higher is better), gated by bench_compare.py.
    json.field("reliability_rate",
               static_cast<double>(reliable_runs) / static_cast<double>(runs));
    json.write();

    std::printf("\nShape check: the stop-and-wait column tracks the closed form at\n"
                "every loss rate (no cliff), and every deletion-style profile leaves\n"
                "reliability intact — only stuck-at windows, which corrupt symbols\n"
                "outright, show up as residual symbol errors.\n");
    return reliable_runs == runs ? 0 : 1;
}
