// X9 (extension) — removing the uniprocessor assumption.
//
// Section 3.1 derives the non-synchronous behaviour from "there is only one
// CPU in the system". This bench reruns the naive covert pair on a K-core
// simulator across core counts and background load, reporting the induced
// (P_d, P_i) and the corrected capacity: an idle multicore box co-schedules
// the pair and hands the attacker a nearly synchronous — i.e. *fast* —
// channel; only contention restores the degradation the paper models.

#include <cstdio>

#include "ccap/core/capacity_bounds.hpp"
#include "ccap/sched/smp.hpp"

int main() {
    using namespace ccap;

    constexpr std::size_t kMessage = 6000;
    std::printf("X9: cores x background load vs covert capacity "
                "(naive pair, random policy, %zu symbols)\n\n",
                kMessage);
    std::printf("%-7s %-6s %8s %8s %10s %12s %14s\n", "cores", "load", "P_d", "P_i",
                "quanta", "corrected", "sym/quantum");

    for (const unsigned cores : {1U, 2U, 4U}) {
        for (const std::size_t load : {0UL, 2UL, 6UL}) {
            sched::SmpCovertConfig cfg;
            cfg.cores = cores;
            cfg.message_len = kMessage;
            cfg.background_processes = load;
            const auto res = sched::run_smp_covert_pair(sched::make_random(), cfg, 0xF9);
            const core::DiChannelParams p{res.deletion_rate(), res.insertion_rate(), 0.0, 1};
            const double corrected = core::degraded_capacity(1.0, p);
            const double spq = res.total_quanta == 0
                                   ? 0.0
                                   : static_cast<double>(res.transmissions) /
                                         static_cast<double>(res.total_quanta);
            std::printf("%-7u %-6zu %8.4f %8.4f %10llu %12.4f %14.4f\n", cores, load,
                        p.p_d, p.p_i, static_cast<unsigned long long>(res.total_quanta),
                        corrected, spq);
        }
        std::printf("\n");
    }
    std::printf("Shape check: one core reproduces the paper's regime (P_d ~ P_i ~ 1/3 at\n"
                "q = 1/2); an idle 2-core box co-schedules the pair and the corrected\n"
                "capacity snaps back toward the synchronous ceiling; background load\n"
                "pushes it down again, and extra cores buy it back. The paper's effect\n"
                "is a contention effect — strongest exactly when the system is busy.\n");
    return 0;
}
