// X8 (extension ablation) — design space of the unsynchronized codes.
//
// E5 compared code *families* at fixed design points; this bench sweeps the
// two most consequential design knobs and reports reliable goodput, so the
// DESIGN.md "ablation benches for design choices" promise is kept:
//   * marker codes: marker period (sync anchors vs rate overhead);
//   * watermark codes: sparse chunk width n_c at fixed GF(16) symbols
//     (drift-tracking power vs rate overhead).
// Channel: binary, P_i = P_d = 0.01 (the regime where all schemes work).

#include <cstdio>

#include "ccap/coding/marker_code.hpp"
#include "ccap/coding/watermark.hpp"
#include "ccap/info/deletion_bounds.hpp"

namespace {

using namespace ccap;
using coding::Bits;

double marker_goodput(std::size_t period, double rate_param, util::Rng& rng) {
    coding::MarkerParams mp;
    mp.marker = {0, 1, 1};
    mp.period = period;
    const coding::MarkerCode marker(mp);
    const coding::ConvolutionalCode outer({0b111, 0b101}, 3);
    const info::DriftParams dp{rate_param, rate_param, 0.0, 2, 32, 10};
    constexpr std::size_t kInfo = 48;
    std::size_t ok = 0, trials = 12, tx_bits = 0;
    for (std::size_t t = 0; t < trials; ++t) {
        const Bits info = coding::random_bits(kInfo, 0xE80 + t);
        const Bits tx = marker.encode_with_outer(outer, info);
        tx_bits = tx.size();
        const auto rx = info::simulate_drift_channel(tx, dp, rng);
        if (marker.decode_with_outer(outer, rx, kInfo, dp) == info) ++ok;
    }
    return static_cast<double>(kInfo) / static_cast<double>(tx_bits) *
           static_cast<double>(ok) / static_cast<double>(trials);
}

double watermark_goodput(unsigned chunk_bits, double rate_param, util::Rng& rng) {
    coding::WatermarkParams wp;
    wp.bits_per_symbol = 4;
    wp.chunk_bits = chunk_bits;
    wp.num_symbols = 48;
    wp.num_checks = 16;
    const coding::WatermarkCode code(wp);
    const info::DriftParams dp{rate_param, rate_param, 0.0, 2, 48, 10};
    std::size_t ok = 0, trials = 8;
    for (std::size_t t = 0; t < trials; ++t) {
        const Bits info = coding::random_bits(code.info_bits(), 0xE81 + t);
        const auto rx = info::simulate_drift_channel(code.encode(info), dp, rng);
        const auto res = code.decode(rx, dp);
        if (res.ldpc_converged && res.info == info) ++ok;
    }
    return code.rate() * static_cast<double>(ok) / static_cast<double>(trials);
}

}  // namespace

int main() {
    std::printf("X8: code design-space ablations (binary channel, P_i = P_d)\n\n");

    std::printf("marker period sweep (marker '011', conv K=3 outer):\n");
    std::printf("%-8s %12s %12s %12s\n", "period", "p=0.005", "p=0.01", "p=0.02");
    util::Rng rng(0xE8);
    for (const std::size_t period : {2UL, 4UL, 8UL, 16UL, 32UL}) {
        std::printf("%-8zu", period);
        for (const double p : {0.005, 0.01, 0.02})
            std::printf(" %12.4f", marker_goodput(period, p, rng));
        std::printf("\n");
    }

    std::printf("\nwatermark chunk-width sweep (GF(16), 48 symbols, 16 checks):\n");
    std::printf("%-8s %10s %12s %12s %12s\n", "n_c", "rate", "p=0.005", "p=0.01", "p=0.02");
    for (const unsigned nc : {4U, 5U, 6U, 8U, 10U}) {
        coding::WatermarkParams wp;
        wp.bits_per_symbol = 4;
        wp.chunk_bits = nc;
        wp.num_symbols = 48;
        wp.num_checks = 16;
        const coding::WatermarkCode probe(wp);
        std::printf("%-8u %10.4f", nc, probe.rate());
        for (const double p : {0.005, 0.01, 0.02})
            std::printf(" %12.4f", watermark_goodput(nc, p, rng));
        std::printf("\n");
    }

    std::printf("\nShape check: both knobs trade rate against synchronization power —\n"
                "tight markers / wide sparse chunks survive harsher channels but cap\n"
                "the rate; the optimum moves toward more redundancy as P grows. This is\n"
                "the design story behind Section 4.1's \"sophisticated coding\".\n");
    return 0;
}
