// X10 — drift-lattice kernel microbenchmark: zero-allocation banded engine
// vs the pre-change implementation.
//
// Three implementations of log2 P(received | transmitted) are timed on the
// same (tx, rx) pairs:
//
//   legacy — the seed DriftHmm lattice, reproduced below verbatim-in-spirit:
//            fresh vector<vector<double>> rows per call, full +/-max_drift
//            sweep, per-position point-prior emission through a fill+dot.
//   exact  — LatticeEngine through a reused workspace, band_eps = 0
//            (bit-identical results, asserted here on every pair).
//   banded — LatticeEngine with band_eps > 0: adaptive drift window with a
//            certified slack bound (asserted: realized error <= slack).
//
// Emits BENCH_JSON (ns/symbol per configuration, speedups, realized banding
// error vs certified slack) and persists BENCH_lattice_kernel.json.
// `--smoke` runs tiny sizes and writes BENCH_lattice_kernel_smoke.json so
// the checked-in full-size baseline is not clobbered by ctest smoke runs.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "ccap/info/deletion_bounds.hpp"
#include "ccap/info/drift_hmm.hpp"
#include "ccap/info/lattice_engine.hpp"
#include "ccap/util/rng.hpp"

namespace {

using ccap::info::DriftParams;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// The seed implementation's forward pass, kept as the timing baseline.
/// Allocates its slice rows per call and always sweeps the full drift band,
/// exactly like src/info/src/drift_hmm.cpp before the lattice engine.
class LegacyLattice {
public:
    explicit LegacyLattice(const DriftParams& params) : p_(params) {
        const auto m_alpha = static_cast<std::size_t>(p_.alphabet);
        inv_m_ = 1.0 / static_cast<double>(p_.alphabet);
        ins_pow_.resize(static_cast<std::size_t>(p_.max_insert_run) + 1);
        ins_pow_[0] = 1.0;
        for (std::size_t g = 1; g < ins_pow_.size(); ++g)
            ins_pow_[g] = ins_pow_[g - 1] * p_.p_i * inv_m_;
        const double p_sub = p_.p_s / (static_cast<double>(p_.alphabet) - 1.0);
        emit_tab_.assign(m_alpha * m_alpha, p_sub);
        for (std::size_t s = 0; s < m_alpha; ++s) emit_tab_[s * m_alpha + s] = 1.0 - p_.p_s;
    }

    [[nodiscard]] double log2_likelihood(std::span<const std::uint8_t> tx,
                                         std::span<const std::uint8_t> rx) const {
        const std::size_t n = tx.size();
        const std::size_t m = rx.size();
        const int d_max = p_.max_drift;
        const auto width = static_cast<std::size_t>(2 * d_max + 1);
        const auto idx = [&](int d) { return static_cast<std::size_t>(d + d_max); };
        const auto drift_ok = [&](std::size_t j, int d) {
            if (d < -d_max || d > d_max) return false;
            const long long r = static_cast<long long>(j) + d;
            return r >= 0 && r <= static_cast<long long>(m);
        };
        std::vector<double> trail_pow(m + 1);
        trail_pow[0] = 1.0;
        for (std::size_t k = 1; k <= m; ++k) trail_pow[k] = trail_pow[k - 1] * p_.p_i * inv_m_;

        std::vector<std::vector<double>> rows(n + 1, std::vector<double>(width, 0.0));
        std::vector<double> log2_scale(n + 1, 0.0);
        std::vector<double> point(p_.alphabet, 0.0);
        rows[0][idx(0)] = 1.0;
        for (std::size_t j = 1; j <= n; ++j) {
            std::fill(point.begin(), point.end(), 0.0);
            point[tx[j - 1]] = 1.0;
            auto& cur = rows[j];
            const auto& prev = rows[j - 1];
            for (int dp = -d_max; dp <= d_max; ++dp) {
                if (!drift_ok(j - 1, dp)) continue;
                const double ap = prev[idx(dp)];
                if (ap == 0.0) continue;
                const std::size_t r0 =
                    static_cast<std::size_t>(static_cast<long long>(j - 1) + dp);
                for (int g = 0; g <= p_.max_insert_run; ++g) {
                    const int d = dp + g - 1;
                    if (!drift_ok(j, d)) continue;
                    const std::size_t r1 = r0 + static_cast<std::size_t>(g);
                    if (r1 > m) break;
                    double w = ins_pow_[static_cast<std::size_t>(g)] * p_.p_d;
                    if (g >= 1) {
                        const double* row =
                            emit_tab_.data() +
                            static_cast<std::size_t>(rx[r1 - 1]) * p_.alphabet;
                        double e = 0.0;
                        for (std::size_t s = 0; s < point.size(); ++s) e += point[s] * row[s];
                        w += ins_pow_[static_cast<std::size_t>(g - 1)] * (1.0 - p_.p_d - p_.p_i) * e;
                    }
                    cur[idx(d)] += ap * w;
                }
            }
            double norm = 0.0;
            for (double v : cur) norm += v;
            if (norm <= 0.0) {
                log2_scale[j] = kNegInf;
                continue;
            }
            for (double& v : cur) v /= norm;
            log2_scale[j] = log2_scale[j - 1] + std::log2(norm);
        }
        if (log2_scale[n] == kNegInf) return kNegInf;
        double tail = 0.0;
        for (int d = -d_max; d <= d_max; ++d) {
            if (!drift_ok(n, d)) continue;
            const long long k = static_cast<long long>(m) - (static_cast<long long>(n) + d);
            if (k < 0) continue;
            tail += rows[n][idx(d)] * trail_pow[static_cast<std::size_t>(k)] * (1.0 - p_.p_i);
        }
        if (tail <= 0.0) return kNegInf;
        return log2_scale[n] + std::log2(tail);
    }

private:
    DriftParams p_;
    double inv_m_ = 0.0;
    std::vector<double> ins_pow_;
    std::vector<double> emit_tab_;
};

struct Pair {
    std::vector<std::uint8_t> tx, rx;
};

std::vector<Pair> make_pairs(const DriftParams& params, std::size_t n, std::size_t count,
                             std::uint64_t seed) {
    ccap::util::Rng rng(seed);
    std::vector<Pair> pairs(count);
    for (auto& p : pairs) {
        p.tx.resize(n);
        for (auto& s : p.tx)
            s = static_cast<std::uint8_t>(rng.uniform_below(params.alphabet));
        p.rx = ccap::info::simulate_drift_channel(p.tx, params, rng);
    }
    return pairs;
}

/// ns per transmitted symbol for `fn(pair)` over all pairs, `reps` sweeps.
template <typename Fn>
double time_ns_per_symbol(const std::vector<Pair>& pairs, std::size_t reps, Fn&& fn) {
    // One untimed warm-up sweep (page in the arenas / branch predictors).
    double sink = 0.0;
    for (const Pair& p : pairs) sink += fn(p);
    ccap::bench::WallTimer timer;
    std::size_t symbols = 0;
    for (std::size_t r = 0; r < reps; ++r) {
        for (const Pair& p : pairs) {
            sink += fn(p);
            symbols += p.tx.size();
        }
    }
    const double sec = timer.seconds();
    if (sink == 42.0) std::printf("# impossible %g\n", sink);  // defeat dead-code elim
    return sec * 1e9 / static_cast<double>(symbols);
}

struct ConfigResult {
    double legacy_ns = 0.0;
    double exact_ns = 0.0;
    double banded_ns = 0.0;
    double max_error = 0.0;  // max over pairs of exact - banded (log2)
    double max_slack = 0.0;  // max certified slack over pairs (log2)
    bool bit_identical = true;
    bool error_certified = true;
};

ConfigResult run_config(const DriftParams& base, std::size_t n, int max_drift, double band_eps,
                        std::size_t num_pairs, std::size_t reps, std::uint64_t seed) {
    DriftParams params = base;
    params.max_drift = max_drift;
    params.band_eps = 0.0;
    const std::vector<Pair> pairs = make_pairs(params, n, num_pairs, seed);

    const LegacyLattice legacy(params);
    const ccap::info::DriftHmm exact_hmm(params);
    DriftParams banded_params = params;
    banded_params.band_eps = band_eps;
    const ccap::info::DriftHmm banded_hmm(banded_params);
    ccap::info::LatticeWorkspace ws;

    ConfigResult res;
    for (const Pair& p : pairs) {
        const double l_legacy = legacy.log2_likelihood(p.tx, p.rx);
        const double l_exact = exact_hmm.log2_likelihood(p.tx, p.rx, ws);
        if (std::memcmp(&l_legacy, &l_exact, sizeof(double)) != 0) res.bit_identical = false;
        const ccap::info::BandedEvidence be =
            banded_hmm.log2_likelihood_banded(p.tx, p.rx, ws);
        if (std::isfinite(l_exact)) {
            const double err = l_exact - be.log2_evidence;
            res.max_error = std::max(res.max_error, err);
            res.max_slack = std::max(res.max_slack, be.log2_slack);
            // FP-rounding headroom on top of the certified (real-arithmetic)
            // bound; the bound itself is what the JSON records.
            if (err > be.log2_slack + 1e-6) res.error_certified = false;
        }
    }

    res.legacy_ns = time_ns_per_symbol(pairs, reps, [&](const Pair& p) {
        return legacy.log2_likelihood(p.tx, p.rx);
    });
    res.exact_ns = time_ns_per_symbol(pairs, reps, [&](const Pair& p) {
        return exact_hmm.log2_likelihood(p.tx, p.rx, ws);
    });
    res.banded_ns = time_ns_per_symbol(pairs, reps, [&](const Pair& p) {
        return banded_hmm.log2_likelihood(p.tx, p.rx, ws);
    });
    return res;
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--smoke") smoke = true;

    // Small-rate regime typical for covert channels: the drift posterior is
    // sharply concentrated, which is exactly where banding pays off.
    DriftParams base;
    base.p_d = 0.004;
    base.p_i = 0.004;
    base.p_s = 0.01;
    base.alphabet = 2;
    base.max_insert_run = 8;

    struct Config {
        std::size_t n;
        int max_drift;
    };
    const std::vector<Config> grid = smoke
                                         ? std::vector<Config>{{64, 8}}
                                         : std::vector<Config>{{512, 8}, {2048, 16}, {4096, 16}};
    const double headline_eps = 1e-12;
    const std::size_t num_pairs = smoke ? 2 : 4;

    ccap::bench::BenchJson json(smoke ? "lattice_kernel_smoke" : "lattice_kernel");
    json.field("p_d", base.p_d).field("p_i", base.p_i).field("p_s", base.p_s);
    json.field("band_eps", headline_eps);

    std::printf("X10: drift-lattice kernel — legacy vs zero-allocation engine\n");
    std::printf("%8s %8s %14s %14s %14s %10s %10s\n", "n", "drift", "legacy ns/sym",
                "exact ns/sym", "banded ns/sym", "speedup", "err<=slack");

    bool all_identical = true;
    bool all_certified = true;
    double headline_speedup = 0.0;
    for (const Config& cfg : grid) {
        // Scale sweep count so each config times ~the same total work.
        const std::size_t reps =
            smoke ? 2 : std::max<std::size_t>(2, 3'000'000 / (cfg.n * num_pairs));
        const ConfigResult r =
            run_config(base, cfg.n, cfg.max_drift, headline_eps, num_pairs, reps, 0x9e3779b9);
        all_identical = all_identical && r.bit_identical;
        all_certified = all_certified && r.error_certified;
        const double speedup = r.legacy_ns / r.banded_ns;
        if (!smoke && cfg.n == 4096 && cfg.max_drift == 16) headline_speedup = speedup;
        std::printf("%8zu %8d %14.1f %14.1f %14.1f %9.2fx %10s\n", cfg.n, cfg.max_drift,
                    r.legacy_ns, r.exact_ns, r.banded_ns, speedup,
                    r.error_certified ? "yes" : "NO");
        const std::string tag =
            "_n" + std::to_string(cfg.n) + "_d" + std::to_string(cfg.max_drift);
        json.field("legacy_ns_sym" + tag, r.legacy_ns);
        json.field("exact_ns_sym" + tag, r.exact_ns);
        json.field("banded_ns_sym" + tag, r.banded_ns);
        json.field("speedup" + tag, speedup);
        json.field("max_error_log2" + tag, r.max_error);
        json.field("max_slack_log2" + tag, r.max_slack);
    }

    // Banding-accuracy sweep at the largest configuration: how the realized
    // error and its certificate grow with band_eps.
    {
        const Config& cfg = grid.back();
        for (const double eps : {1e-12, 1e-8, 1e-4}) {
            const ConfigResult r = run_config(base, cfg.n, cfg.max_drift, eps, num_pairs,
                                              /*reps=*/2, 0x51ed2701);
            all_certified = all_certified && r.error_certified;
            char tag[64];
            std::snprintf(tag, sizeof tag, "_eps%g", eps);
            json.field(std::string("max_error_log2") + tag, r.max_error);
            json.field(std::string("max_slack_log2") + tag, r.max_slack);
            std::printf("  band_eps=%-8g max|error|=%.3e log2  certified slack=%.3e log2\n",
                        eps, r.max_error, r.max_slack);
        }
    }

    json.field("bit_identical", all_identical ? 1 : 0);
    json.field("error_certified", all_certified ? 1 : 0);
    if (!smoke) json.field("headline_speedup_n4096_d16", headline_speedup);
    json.write();

    if (!all_identical) {
        std::fprintf(stderr, "FAIL: band_eps=0 engine is not bit-identical to the legacy lattice\n");
        return 1;
    }
    if (!all_certified) {
        std::fprintf(stderr, "FAIL: realized banding error exceeded the certified slack\n");
        return 1;
    }
    return 0;
}
