// X5 (extension) — timing covert channel vs the fuzzy-time countermeasure.
//
// Section 3.1 notes that exploiting covert timing channels needs coherent
// time references, and that "high assurance systems have made efforts to
// remove event sources that can serve as such time references". This bench
// runs the uniprocessor timing channel (sender modulates its sleep; the
// receiver's only clock is its own quantum count) and sweeps the two
// classic defenses — coarsening the receiver's clock and adding jitter —
// reporting measured BER and information rate against the ideal Shannon
// timing capacity.

#include <cstdio>

#include "ccap/sched/timing_channel.hpp"

int main() {
    using namespace ccap::sched;

    TimingChannelConfig base;
    base.short_gap = 2;
    base.long_gap = 6;
    base.message_len = 2000;

    std::printf("X5: scheduler timing channel, gaps {%llu, %llu}, ideal capacity "
                "%.4f bits/quantum\n\n",
                static_cast<unsigned long long>(base.short_gap),
                static_cast<unsigned long long>(base.long_gap),
                ideal_timing_capacity(base));

    std::printf("clock granularity sweep (round-robin scheduler, no jitter):\n");
    std::printf("%-14s %10s %14s\n", "granularity", "BER", "bits/quantum");
    for (const SimTime g : {1ULL, 2ULL, 4ULL, 8ULL, 16ULL}) {
        TimingChannelConfig cfg = base;
        cfg.clock_granularity = g;
        const auto res = run_timing_channel(make_round_robin(), cfg, 0xF5);
        std::printf("%-14llu %10.4f %14.4f\n", static_cast<unsigned long long>(g),
                    res.bit_error_rate, res.info_rate_per_quantum());
    }

    std::printf("\nclock jitter sweep (round-robin scheduler, granularity 1):\n");
    std::printf("%-14s %10s %14s\n", "jitter", "BER", "bits/quantum");
    for (const SimTime j : {0ULL, 1ULL, 2ULL, 4ULL, 8ULL, 16ULL}) {
        TimingChannelConfig cfg = base;
        cfg.clock_jitter = j;
        const auto res = run_timing_channel(make_round_robin(), cfg, 0xF5);
        std::printf("%-14llu %10.4f %14.4f\n", static_cast<unsigned long long>(j),
                    res.bit_error_rate, res.info_rate_per_quantum());
    }

    std::printf("\nscheduler sweep (perfect clock):\n");
    std::printf("%-16s %10s %14s\n", "scheduler", "BER", "bits/quantum");
    {
        const auto rr = run_timing_channel(make_round_robin(), base, 0xF5);
        std::printf("%-16s %10.4f %14.4f\n", "round_robin", rr.bit_error_rate,
                    rr.info_rate_per_quantum());
        const auto rnd = run_timing_channel(make_random(), base, 0xF5);
        std::printf("%-16s %10.4f %14.4f\n", "random", rnd.bit_error_rate,
                    rnd.info_rate_per_quantum());
        const auto lot = run_timing_channel(make_lottery(), base, 0xF5);
        std::printf("%-16s %10.4f %14.4f\n", "lottery", lot.bit_error_rate,
                    lot.info_rate_per_quantum());
    }

    std::printf("\nShape check: with a fine clock the channel runs near (but below) the\n"
                "ideal capacity; coarsening the clock past the gap difference or adding\n"
                "comparable jitter collapses it — removing time references works, and\n"
                "scheduler randomness alone (the paper's non-synchronous effect) already\n"
                "costs a measurable fraction of the rate.\n");
    return 0;
}
