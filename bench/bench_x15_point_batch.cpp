// X15 — parameter-plane batched lattice: CRN point-tiled sweep throughput.
//
// The independent-streams sweep evaluates each grid point with its own
// variate stream and its own lattice passes, so a G-point parameter sweep
// pays G full sweeps even though neighboring points walk nearly identical
// lattices. The CRN engine (McOptions::point_tile > 0) draws one variate
// tape per block, realizes the channel at G grid points from those shared
// draws, and evaluates all G points as lanes of a single per-lane-weight
// lattice sweep — amortizing the trellis walk across the whole tile and
// positively correlating neighboring estimates, which shrinks the standard
// error of adjacent-point differences (the quantity the interpolation
// certificate consumes).
//
// Correctness gates before any timing (exit 1 on violation):
//   * point_tile = 0 bit-identical to the historical per-point path
//     (standalone iid_mutual_information_rate calls) at band_eps = 0,
//   * the CRN sweep bit-identical across worker-thread count, MC batch
//     size, and point_tile width (the per-(block, point) sample is a pure
//     function of the root seed, the block index, and the point's params),
//   * full-size runs must then show >= 1.5x sweep throughput at matched
//     worst-point SEM on a >= 16-point grid, with the summed
//     adjacent-point difference SEM below the independent baseline.
//
// The timed workload is interpolation-grade: a dense grid at a small
// per-point block count (the capacity-cache refinement pattern — the
// certificate wants many correlated nodes, not a few precise ones). That
// is exactly where the independent path wastes the machine: each point
// offers only num_blocks lanes per sweep (sub-width, masked tails) and
// pays the engine setup per point, while the CRN tile packs
// blocks x points lanes into full vectors and pays the setup per tile.
//
// Emits BENCH_JSON and persists BENCH_point_batch.json (gated by
// scripts/bench_compare.py); `--smoke` writes BENCH_point_batch_smoke.json
// so ctest runs never clobber the checked-in full-size baseline.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "ccap/info/deletion_bounds.hpp"
#include "ccap/util/rng.hpp"

namespace {

using ccap::info::CapacityPoint;
using ccap::info::DriftParams;
using ccap::info::McOptions;
using ccap::info::MiEstimate;
using ccap::info::PointSweepReport;

bool bit_identical(const MiEstimate& a, const MiEstimate& b) {
    return std::memcmp(&a.rate, &b.rate, sizeof(double)) == 0 &&
           std::memcmp(&a.sem, &b.sem, sizeof(double)) == 0 && a.blocks == b.blocks &&
           a.block_len == b.block_len && a.converged == b.converged;
}

bool sweeps_identical(const std::vector<MiEstimate>& a, const std::vector<MiEstimate>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (!bit_identical(a[i], b[i])) return false;
    return true;
}

std::vector<CapacityPoint> make_grid(bool smoke) {
    // A raster over the (P_d, P_i) plane: adjacent points differ by one
    // small parameter step, which is exactly the regime where common random
    // numbers buy correlated neighbors (the interpolation certificate's
    // adjacent differences) on top of the amortized lattice sweep.
    const std::vector<double> pds =
        smoke ? std::vector<double>{0.05, 0.2} : std::vector<double>{0.02, 0.08, 0.14,
                                                                     0.2, 0.26, 0.32};
    const std::vector<double> pis =
        smoke ? std::vector<double>{0.0, 0.05} : std::vector<double>{0.0, 0.05, 0.1, 0.15};
    std::vector<CapacityPoint> pts;
    std::uint64_t seed = 0x15;
    for (double pd : pds)
        for (double pi : pis) pts.push_back({DriftParams{pd, pi, 0.0, 2, 8, 4}, seed++});
    return pts;
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--smoke") smoke = true;

    const std::vector<CapacityPoint> pts = make_grid(smoke);
    const int reps = smoke ? 2 : 25;
    McOptions indep;
    indep.block_len = smoke ? 16 : 48;
    indep.num_blocks = smoke ? 4 : 6;
    indep.threads = 8;
    indep.point_tile = 0;
    McOptions crn = indep;
    crn.point_tile = ccap::info::kMcPointTileAuto;
    const std::size_t tile = ccap::info::resolved_point_tile(crn, pts.size());

    ccap::bench::BenchJson json(smoke ? "point_batch_smoke" : "point_batch");
    json.field("points", static_cast<std::uint64_t>(pts.size()));
    json.field("block_len", static_cast<std::uint64_t>(indep.block_len));
    json.field("mc_blocks", static_cast<std::uint64_t>(indep.num_blocks));
    json.field("point_tile", static_cast<std::uint64_t>(tile));
    json.field("crn", 1);

    std::printf("X15: CRN point-tiled sweep — whole grid tile per lattice pass\n");
    std::printf("  %zu points, %zu x %zu symbols, tile %zu points/sweep\n", pts.size(),
                indep.num_blocks, indep.block_len, tile);

    // ---- Identity gates (before any timing) -------------------------------
    // Gate 1: point_tile = 0 leaves the historical per-point path untouched.
    const std::vector<MiEstimate> out_indep =
        ccap::info::iid_mutual_information_rate_points(pts, indep);
    bool indep_identical = true;
    for (std::size_t i = 0; i < pts.size(); ++i) {
        McOptions solo = indep;
        solo.threads = 1;
        ccap::util::Rng rng(pts[i].seed);
        const MiEstimate standalone =
            ccap::info::iid_mutual_information_rate(pts[i].params, solo, rng);
        indep_identical = indep_identical && bit_identical(out_indep[i], standalone);
    }

    // Gate 2: the CRN sweep is invariant in threads x batch x point_tile.
    const std::vector<MiEstimate> out_crn =
        ccap::info::iid_mutual_information_rate_points(pts, crn);
    bool crn_invariant = true;
    for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        for (std::size_t batch : {std::size_t{0}, std::size_t{3}, std::size_t{64}}) {
            for (std::size_t width :
                 {std::size_t{1}, std::size_t{4}, pts.size(), ccap::info::kMcPointTileAuto}) {
                McOptions variant = crn;
                variant.threads = threads;
                variant.batch = batch;
                variant.point_tile = width;
                crn_invariant = crn_invariant &&
                                sweeps_identical(out_crn,
                                                 ccap::info::iid_mutual_information_rate_points(
                                                     pts, variant));
            }
        }
    }
    std::printf("  identity: independent-vs-per-point %s, crn threads x batch x tile %s\n",
                indep_identical ? "yes" : "NO", crn_invariant ? "yes" : "NO");
    json.field("indep_identical", indep_identical ? 1 : 0);
    json.field("crn_invariant", crn_invariant ? 1 : 0);
    if (!indep_identical || !crn_invariant) {
        json.write();
        std::fprintf(stderr, "FAIL: CRN point-tile identity gates violated\n");
        return 1;
    }

    // ---- Matched-precision throughput -------------------------------------
    // Both modes run the same num_blocks per point, and the CRN coupling
    // preserves each point's marginal sample law, so worst-point SEM is
    // matched by construction; the recorded SEMs document that.
    double worst_sem_indep = 0.0, worst_sem_crn = 0.0;
    std::size_t blocks_indep = 0, blocks_crn = 0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
        worst_sem_indep = std::max(worst_sem_indep, out_indep[i].sem);
        worst_sem_crn = std::max(worst_sem_crn, out_crn[i].sem);
        blocks_indep += out_indep[i].blocks;
        blocks_crn += out_crn[i].blocks;
    }

    std::vector<MiEstimate> indep_again, crn_again;
    ccap::bench::WallTimer indep_timer;
    for (int r = 0; r < reps; ++r)
        indep_again = ccap::info::iid_mutual_information_rate_points(pts, indep);
    const double indep_sec = indep_timer.seconds();
    ccap::bench::WallTimer crn_timer;
    for (int r = 0; r < reps; ++r)
        crn_again = ccap::info::iid_mutual_information_rate_points(pts, crn);
    const double crn_sec = crn_timer.seconds();
    if (!sweeps_identical(indep_again, out_indep) || !sweeps_identical(crn_again, out_crn)) {
        std::fprintf(stderr, "FAIL: timed reruns drifted from the gated sweeps\n");
        return 1;
    }
    const double speedup = indep_sec / crn_sec;
    std::printf("  independent %d sweeps %.3fs, crn %.3fs (%.2fx); worst sem %.4g vs %.4g\n",
                reps, indep_sec, crn_sec, speedup, worst_sem_indep, worst_sem_crn);

    // ---- Adjacent-point difference SEM ------------------------------------
    PointSweepReport rep_indep, rep_crn;
    const std::vector<MiEstimate> ri =
        ccap::info::iid_mutual_information_rate_points(pts, indep, &rep_indep);
    const std::vector<MiEstimate> rc =
        ccap::info::iid_mutual_information_rate_points(pts, crn, &rep_crn);
    if (!sweeps_identical(ri, out_indep) || !sweeps_identical(rc, out_crn))
        std::printf("# impossible: reporting overload changed the estimates\n");
    double sum_indep = 0.0, sum_crn = 0.0;
    for (double s : rep_indep.adjacent_diff_sem) sum_indep += s;
    for (double s : rep_crn.adjacent_diff_sem) sum_crn += s;
    const double sem_ratio = sum_indep > 0.0 ? sum_crn / sum_indep : 1.0;
    std::printf("  adjacent-difference sem: independent %.4g, crn %.4g (ratio %.3f)\n",
                sum_indep, sum_crn, sem_ratio);

    json.field("indep_seconds", indep_sec);
    json.field("crn_seconds", crn_sec);
    json.field("sweep_speedup", speedup);
    json.field("worst_sem_indep", worst_sem_indep);
    json.field("worst_sem_crn", worst_sem_crn);
    json.field("blocks_indep_total", static_cast<std::uint64_t>(blocks_indep));
    json.field("blocks_crn_total", static_cast<std::uint64_t>(blocks_crn));
    json.field("adjacent_sem_ratio", sem_ratio);
    json.write();

    if (!smoke && speedup < 1.5) {
        std::fprintf(stderr, "FAIL: crn sweep speedup %.2fx < 1.5x at matched precision\n",
                     speedup);
        return 1;
    }
    if (!smoke && sem_ratio >= 1.0) {
        std::fprintf(stderr,
                     "FAIL: crn adjacent-difference sem ratio %.3f did not shrink\n",
                     sem_ratio);
        return 1;
    }
    return 0;
}
