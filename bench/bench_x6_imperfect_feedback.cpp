// X6 (extension) — what "perfect feedback" is worth.
//
// Section 4.2 assumes the feedback path is perfect and instantaneous
// ("this simplifies the analysis, and is also a requirement for deriving
// the maximum information rate"). This bench relaxes that: the outcome of
// each channel use reaches the sender D uses late, and we measure what two
// retransmission disciplines salvage on a deletion channel:
//   * delayed stop-and-wait (idle while waiting)  ~ N(1-P_d)/(1+D)
//   * go-back-N pipelining                        ~ N(1-P_d)/(1+P_d*D)
// against the perfect-feedback Theorem-3 rate N(1-P_d).

#include <cstdio>

#include "ccap/core/capacity_bounds.hpp"
#include "ccap/core/feedback_protocols.hpp"
#include "ccap/core/protocol_analysis.hpp"

int main() {
    using namespace ccap;

    constexpr std::size_t kMessage = 30000;
    std::printf("X6: feedback delay vs achieved rate on the deletion channel "
                "(N=1, %zu symbols)\n\n",
                kMessage);
    std::printf("%-6s %-6s | %10s %10s | %10s %10s | %10s\n", "P_d", "delay", "S&W meas",
                "S&W th", "GBN meas", "GBN th", "Thm3");

    for (const double pd : {0.05, 0.2}) {
        const core::DiChannelParams p{pd, 0.0, 0.0, 1};
        for (const std::uint64_t d : {0ULL, 1ULL, 4ULL, 16ULL, 64ULL}) {
            util::Rng rng(0xF6);
            std::vector<std::uint32_t> msg(kMessage);
            for (auto& s : msg) s = static_cast<std::uint32_t>(rng.uniform_below(2));

            core::DeletionInsertionChannel ch_a(p, 0xF6A);
            const auto saw = core::run_delayed_stop_and_wait(ch_a, msg, d);
            core::DeletionInsertionChannel ch_b(p, 0xF6B);
            const auto gbn = core::run_go_back_n(ch_b, msg, d);

            std::printf("%-6.2f %-6llu | %10.4f %10.4f | %10.4f %10.4f | %10.4f\n", pd,
                        static_cast<unsigned long long>(d), saw.measured_info_rate(1),
                        core::delayed_stop_and_wait_rate(p, d), gbn.measured_info_rate(1),
                        core::go_back_n_rate(p, d),
                        core::theorem3_feedback_capacity(p));
        }
        std::printf("\n");
    }
    std::printf("Shape check: at delay 0 both disciplines sit on the Theorem-3 rate;\n"
                "stop-and-wait collapses as 1/(1+D) while pipelining loses only the\n"
                "P_d-weighted flush cost — the paper's perfect-feedback assumption is\n"
                "nearly free *if* the exploit can pipeline, and very expensive if not.\n");
    return 0;
}
