// X3 (extension) — Zigangirov's sequential decoding (the paper's reference
// [12]): convolutional codes + stack decoding over the deletion-insertion
// channel, the *original* unsynchronized-communication construction.
//
// Sweeps the indel rate and compares the stack decoder against the modern
// schemes of E5 (block success rate, goodput, and search effort), for two
// constraint lengths.

#include <cstdio>

#include "ccap/coding/stack_decoder.hpp"
#include "ccap/core/capacity_bounds.hpp"
#include "ccap/info/deletion_bounds.hpp"

namespace {

using namespace ccap;
using coding::Bits;

struct Outcome {
    double goodput = 0.0;
    double success = 0.0;
    double mean_expansions = 0.0;
};

Outcome run(const coding::ConvolutionalCode& code, double rate_param, std::size_t info_len,
            util::Rng& rng) {
    const info::DriftParams drift{rate_param, rate_param, 0.0, 2, 48, 10};
    coding::StackDecoderParams sp;
    sp.p_d = rate_param;
    sp.p_i = rate_param;
    sp.max_expansions = 60000;
    Outcome out;
    constexpr int kTrials = 12;
    std::size_t tx_bits = 0;
    int ok = 0;
    double expansions = 0.0;
    for (int t = 0; t < kTrials; ++t) {
        const Bits info = coding::random_bits(info_len, 0xC3F0 + static_cast<unsigned>(t));
        const Bits tx = code.encode(info);
        tx_bits = tx.size();
        const auto rx = info::simulate_drift_channel(tx, drift, rng);
        const auto res = coding::stack_decode(code, rx, info_len, sp);
        if (res.success && res.info == info) ++ok;
        expansions += static_cast<double>(res.expansions);
    }
    out.success = static_cast<double>(ok) / kTrials;
    out.goodput = out.success * static_cast<double>(info_len) / static_cast<double>(tx_bits);
    out.mean_expansions = expansions / kTrials;
    return out;
}

}  // namespace

int main() {
    std::printf("X3: Zigangirov sequential decoding over the indel channel "
                "(rate-1/2, 96 info bits, P_i = P_d)\n\n");
    std::printf("%-8s | %8s %8s %10s | %8s %8s %10s | %8s\n", "P_d=P_i", "K3 ok", "K3 good",
                "K3 expand", "K7 ok", "K7 good", "K7 expand", "feedback");

    const coding::ConvolutionalCode k3({0b111, 0b101}, 3);
    const coding::ConvolutionalCode k7({0b1011011, 0b1111001}, 7);
    util::Rng rng(0xC3);
    for (const double r : {0.002, 0.005, 0.01, 0.02, 0.04}) {
        const Outcome a = run(k3, r, 96, rng);
        const Outcome b = run(k7, r, 96, rng);
        const core::DiChannelParams p{r, r, 0.0, 1};
        std::printf("%-8.3f | %8.2f %8.4f %10.0f | %8.2f %8.4f %10.0f | %8.4f\n", r,
                    a.success, a.goodput, a.mean_expansions, b.success, b.goodput,
                    b.mean_expansions, core::counter_protocol_exact_rate(p));
    }
    std::printf(
        "\nShape check: sequential decoding holds its ~0.5 design rate at small\n"
        "indel rates with modest search effort, degrades as the rate climbs\n"
        "(search effort exploding first — the classic sequential-decoding\n"
        "signature), and always sits below the feedback rate: 1969's answer to\n"
        "Section 4.1, same conclusion.\n");
    return 0;
}
