// X2 (extension ablation) — countermeasure evaluation: an NRL-Pump-style
// randomized delay on the legal Low->High flow of the MLS system.
//
// E10 showed the legal feedback path makes the covert channel fast and
// exact (the paper's Section-4.3 warning). The classic defence (Kang &
// Moskowitz's Pump) decouples acknowledgement timing from the receiver.
// This bench sweeps the pump delay and reports the covert goodput: the
// channel stays *reliable* (the pump delays, it does not corrupt) but its
// bandwidth collapses towards 1/mean-delay.

#include <cstdio>

#include "ccap/sched/mls_system.hpp"

int main() {
    using namespace ccap::sched;

    constexpr std::size_t kSecret = 1500;
    std::printf("X2: pump mitigation on the MLS feedback path (%zu symbols, random "
                "scheduler)\n\n",
                kSecret);
    std::printf("%-22s %12s %10s %14s\n", "pump delay [quanta]", "goodput", "exact",
                "1/(4+meanD)");

    for (const SimTime max_delay : {0ULL, 4ULL, 8ULL, 16ULL, 32ULL, 64ULL, 128ULL}) {
        MlsConfig cfg;
        cfg.message_len = kSecret;
        cfg.use_legal_feedback = true;
        cfg.pump_min_delay = max_delay / 2;
        cfg.pump_max_delay = max_delay;
        const MlsResult res = run_mls_exfiltration(make_random(), cfg, 0xB2);
        const double mean_delay = (static_cast<double>(cfg.pump_min_delay) +
                                   static_cast<double>(cfg.pump_max_delay)) /
                                  2.0;
        char label[32];
        std::snprintf(label, sizeof label, "[%llu, %llu]",
                      static_cast<unsigned long long>(cfg.pump_min_delay),
                      static_cast<unsigned long long>(cfg.pump_max_delay));
        std::printf("%-22s %12.4f %10s %14.4f\n", label, res.goodput(),
                    res.exact ? "yes" : "NO", 1.0 / (4.0 + mean_delay));
    }
    std::printf("\nShape check: goodput tracks the 1/(handshake + mean-delay) model and\n"
                "falls by an order of magnitude across the sweep — the pump throttles\n"
                "the feedback-assisted covert channel without breaking the legal flow.\n");
    return 0;
}
