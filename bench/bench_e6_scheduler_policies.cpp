// E6 — Sections 3.1/3.2: the scheduler *is* the channel. Sweep scheduling
// policies and quantum-jitter levels on the uniprocessor covert pair,
// estimate the induced (P_d, P_i) from the traces, and report the capacity
// each policy admits — the paper's proposed use of its estimation method to
// evaluate candidate system implementations.

#include <cstdio>
#include <memory>

#include "ccap/estimate/analyzer.hpp"
#include "ccap/estimate/report.hpp"
#include "ccap/sched/covert_pair.hpp"

int main() {
    using namespace ccap;

    constexpr std::size_t kMessage = 6000;
    std::printf("E6: scheduler policies vs covert capacity (naive pair, %zu symbols)\n\n",
                kMessage);
    std::printf("%-26s %8s %8s %8s %10s %12s %12s\n", "policy", "P_d", "P_i", "P_s",
                "trad b/u", "corrected", "Thm5..Thm1");

    struct Row {
        const char* label;
        std::unique_ptr<sched::Scheduler> scheduler;
    };
    Row rows[] = {
        {"round_robin", sched::make_round_robin()},
        {"fuzzy_rr eps=0.10", sched::make_fuzzy_round_robin(0.10)},
        {"fuzzy_rr eps=0.25", sched::make_fuzzy_round_robin(0.25)},
        {"fuzzy_rr eps=0.50", sched::make_fuzzy_round_robin(0.50)},
        {"fuzzy_rr eps=0.75", sched::make_fuzzy_round_robin(0.75)},
        {"random", sched::make_random()},
        {"lottery 1:1", sched::make_lottery()},
        {"priority (equal)", sched::make_priority()},
        {"mlfq 3-level", sched::make_mlfq()},
    };

    for (auto& row : rows) {
        sched::CovertPairConfig cfg;
        cfg.mode = sched::PairMode::naive;
        cfg.message_len = kMessage;
        const auto run = sched::run_covert_pair(std::move(row.scheduler), cfg, 0xE6);

        estimate::AnalyzerConfig acfg;
        acfg.bits_per_symbol = 1;
        acfg.uses_per_second = 1000.0;
        const auto rep = estimate::analyze_traces(run.sent, run.received, acfg);
        std::printf("%-26s %8.4f %8.4f %8.4f %10.3f %12.3f %6.3f..%.3f\n", row.label,
                    rep.params.p_d.value, rep.params.p_i.value, rep.params.p_s.value,
                    rep.traditional_bits_per_use, rep.degraded_bits_per_use,
                    rep.band_bits_per_use.lower, rep.band_bits_per_use.upper);
    }

    std::printf("\nBackground load ablation (round-robin, extra CPU-burning processes;\n"
                "1000 scheduling quanta per second of wall time):\n");
    std::printf("%-26s %12s %14s %12s\n", "background processes", "covert quanta",
                "corrected b/u", "bits/second");
    for (const std::size_t bg : {0UL, 1UL, 2UL, 4UL, 8UL}) {
        sched::CovertPairConfig cfg;
        cfg.mode = sched::PairMode::naive;
        cfg.message_len = kMessage;
        cfg.background_processes = bg;
        const auto run = sched::run_covert_pair(sched::make_round_robin(), cfg, 0xE6);
        estimate::AnalyzerConfig acfg;
        acfg.bits_per_symbol = 1;
        // The covert pair only uses the channel when one of the two parties
        // holds the CPU; background load dilutes that share of wall time.
        const double covert_share =
            static_cast<double>(run.sender_quanta + run.receiver_quanta) /
            static_cast<double>(run.total_quanta);
        acfg.uses_per_second = 1000.0 * covert_share / 2.0;  // uses ~ sender quanta
        const auto rep = estimate::analyze_traces(run.sent, run.received, acfg);
        std::printf("%-26zu %12.3f %14.3f %12.1f\n", bg, covert_share,
                    rep.degraded_bits_per_use, rep.degraded_bits_per_second);
    }

    std::printf("\nShape check: per-use capacity is maximal under deterministic scheduling\n"
                "and falls as scheduling noise grows; background load leaves the per-use\n"
                "figure alone but divides the wall-clock bandwidth — two independent\n"
                "knobs a defender can turn, both quantified by the paper's method.\n");
    return 0;
}
