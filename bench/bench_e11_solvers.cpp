// E11 — microbenchmarks of the numerical engines (google-benchmark): the
// Blahut-Arimoto solver, the drift-lattice forward pass, trace alignment,
// parameter MLE building blocks, and the protocol simulators. These bound
// the cost of every reproduction harness in E1-E10.

#include <benchmark/benchmark.h>

#include "ccap/coding/watermark.hpp"
#include "ccap/core/feedback_protocols.hpp"
#include "ccap/estimate/alignment.hpp"
#include "ccap/estimate/param_estimator.hpp"
#include "ccap/info/blahut_arimoto.hpp"
#include "ccap/info/deletion_bounds.hpp"

namespace {

using namespace ccap;

void BM_BlahutArimotoBsc(benchmark::State& state) {
    const auto channel = info::make_bsc(0.11);
    for (auto _ : state) benchmark::DoNotOptimize(info::blahut_arimoto(channel).capacity);
}
BENCHMARK(BM_BlahutArimotoBsc);

void BM_BlahutArimotoMary(benchmark::State& state) {
    const auto channel = info::make_mary_symmetric(static_cast<unsigned>(state.range(0)), 0.1);
    for (auto _ : state) benchmark::DoNotOptimize(info::blahut_arimoto(channel).capacity);
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BlahutArimotoMary)->RangeMultiplier(2)->Range(4, 64)->Complexity();

void BM_DriftLikelihood(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    info::DriftParams dp{0.05, 0.05, 0.01, 2, 32, 8};
    const info::DriftHmm hmm(dp);
    util::Rng rng(1);
    std::vector<std::uint8_t> tx(n);
    for (auto& b : tx) b = static_cast<std::uint8_t>(rng.next() & 1);
    const auto rx = info::simulate_drift_channel(tx, dp, rng);
    for (auto _ : state) benchmark::DoNotOptimize(hmm.log2_likelihood(tx, rx));
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DriftLikelihood)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_DriftPosteriors(benchmark::State& state) {
    info::DriftParams dp{0.05, 0.05, 0.01, 2, 32, 8};
    const info::DriftHmm hmm(dp);
    util::Rng rng(2);
    std::vector<std::uint8_t> tx(512);
    for (auto& b : tx) b = static_cast<std::uint8_t>(rng.next() & 1);
    const auto rx = info::simulate_drift_channel(tx, dp, rng);
    const util::Matrix priors(512, 2, 0.5);
    for (auto _ : state) benchmark::DoNotOptimize(hmm.posteriors(priors, rx));
}
BENCHMARK(BM_DriftPosteriors);

void BM_Alignment(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    util::Rng rng(3);
    std::vector<std::uint32_t> a(n), b(n);
    for (auto& s : a) s = static_cast<std::uint32_t>(rng.uniform_below(4));
    b = a;
    for (auto& s : b)
        if (rng.bernoulli(0.05)) s = static_cast<std::uint32_t>(rng.uniform_below(4));
    for (auto _ : state) benchmark::DoNotOptimize(estimate::align(a, b).distance);
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Alignment)->RangeMultiplier(2)->Range(128, 2048)->Complexity();

void BM_CounterProtocol(benchmark::State& state) {
    const core::DiChannelParams p{0.1, 0.1, 0.0, 1};
    util::Rng rng(4);
    std::vector<std::uint32_t> msg(10000);
    for (auto& s : msg) s = static_cast<std::uint32_t>(rng.uniform_below(2));
    for (auto _ : state) {
        core::DeletionInsertionChannel ch(p, 5);
        benchmark::DoNotOptimize(core::run_counter_protocol(ch, msg).channel_uses);
    }
}
BENCHMARK(BM_CounterProtocol);

void BM_WatermarkDecode(benchmark::State& state) {
    coding::WatermarkParams wp;
    wp.bits_per_symbol = 4;
    wp.chunk_bits = 6;
    wp.num_symbols = 48;
    wp.num_checks = 16;
    const coding::WatermarkCode code(wp);
    const info::DriftParams dp{0.01, 0.01, 0.0, 2, 32, 8};
    util::Rng rng(6);
    const auto info_bits = coding::random_bits(code.info_bits(), 7);
    const auto rx = info::simulate_drift_channel(code.encode(info_bits), dp, rng);
    for (auto _ : state) benchmark::DoNotOptimize(code.decode(rx, dp).ldpc_converged);
}
BENCHMARK(BM_WatermarkDecode);

void BM_ParamMle(benchmark::State& state) {
    const core::DiChannelParams truth{0.1, 0.05, 0.0, 2};
    core::DeletionInsertionChannel ch(truth, 8);
    util::Rng rng(9);
    std::vector<std::uint32_t> sent(2000);
    for (auto& s : sent) s = static_cast<std::uint32_t>(rng.uniform_below(4));
    const auto t = ch.transduce(sent);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            estimate::estimate_params_mle(sent, t.output, 2).p_d.value);
}
BENCHMARK(BM_ParamMle);

void BM_IidMiRate(benchmark::State& state) {
    info::DriftParams dp;
    dp.p_d = 0.1;
    for (auto _ : state) {
        util::Rng rng(10);
        benchmark::DoNotOptimize(info::iid_mutual_information_rate(dp, 96, 4, rng).rate);
    }
}
BENCHMARK(BM_IidMiRate);

}  // namespace
