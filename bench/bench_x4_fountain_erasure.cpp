// X4 (extension) — operating the extended erasure channel at its capacity.
//
// Theorem 1 bounds the covert channel by the matched erasure channel's
// N(1 - P_d). E9 showed the side information is what the blind channel is
// missing; this bench shows the side information is *sufficient*: an LT
// fountain code over the DeletionInsertionChannel's erasure view (drop-out
// locations known, insertions discarded) delivers source data at a rate
// approaching N(1 - P_d) with no feedback at all — the constructive
// counterpart of Theorem 1.

#include <cstdio>

#include "ccap/coding/lt_code.hpp"
#include "ccap/core/capacity_bounds.hpp"
#include "ccap/core/erasure_channel.hpp"

int main() {
    using namespace ccap;

    constexpr unsigned kBits = 4;          // 4-bit symbols
    constexpr std::size_t kSource = 2000;  // LT source block
    std::printf("X4: LT fountain code over the matched extended-erasure view "
                "(N=%u, k=%zu)\n\n",
                kBits, kSource);
    std::printf("%-6s %-6s %10s %12s %12s %12s %10s\n", "P_d", "P_i", "uses", "rate b/use",
                "N*P_t", "efficiency", "overhead");

    // Pure-deletion sweep (the Theorem-1 setting: N*P_t == N(1-P_d)), then a
    // deletion+insertion sweep: inserted symbols burn channel uses but are
    // discarded by the extended-erasure side information, so the operative
    // bound is N*P_t per use.
    const std::pair<double, double> settings[] = {{0.05, 0.0}, {0.1, 0.0},  {0.2, 0.0},
                                                  {0.3, 0.0},  {0.4, 0.0},  {0.1, 0.1},
                                                  {0.2, 0.2},  {0.3, 0.3}};
    for (const auto& [pd, pi] : settings) {
        const core::DiChannelParams p{pd, pi, 0.0, kBits};
        core::DeletionInsertionChannel channel(p, 0xF4);
        util::Rng rng(0xF4F0);

        coding::LtParams lp;
        lp.k = kSource;
        lp.seed = 0xF4F1;
        const coding::LtCode code(lp);
        std::vector<std::uint32_t> source(kSource);
        for (auto& v : source) v = static_cast<std::uint32_t>(rng.uniform_below(p.alphabet()));

        coding::LtDecoder decoder(code);
        std::uint64_t uses = 0;
        std::uint64_t index = 0;
        while (!decoder.complete() && index < 8 * kSource) {
            // Transmit encoded symbols in batches through the DI channel;
            // the erasure view tells the receiver which ones survived.
            constexpr std::size_t kBatch = 64;
            std::vector<std::uint32_t> batch(kBatch);
            for (std::size_t j = 0; j < kBatch; ++j)
                batch[j] = code.encode_symbol(index + j, source);
            const auto t = channel.transduce(batch, false);
            const auto view = core::erasure_view(t);
            uses += t.channel_uses;
            for (std::size_t j = 0; j < kBatch; ++j)
                if (view.symbols[j]) {
                    if (decoder.add_symbol(index + j, *view.symbols[j])) break;
                }
            index += kBatch;
        }
        const bool ok = decoder.complete();
        const double rate = ok ? static_cast<double>(kSource) * kBits /
                                     static_cast<double>(uses)
                               : 0.0;
        const double bound = static_cast<double>(kBits) * p.p_t();
        const double overhead =
            static_cast<double>(decoder.symbols_consumed()) / static_cast<double>(kSource);
        std::printf("%-6.2f %-6.2f %10llu %12.4f %12.4f %12.4f %10.3f\n", pd, pi,
                    static_cast<unsigned long long>(uses), rate, bound,
                    bound > 0 ? rate / bound : 0.0, overhead);
    }
    std::printf("\nShape check: efficiency == 1/overhead (~0.85 here) at *every* operating\n"
                "point — the only loss is the fountain overhead, which vanishes as k\n"
                "grows. With location side information no feedback is needed to approach\n"
                "the erasure bound; without it (E9) a capacity gap remains. That\n"
                "contrast is Theorem 1.\n");
    return 0;
}
