// X7 (extension ablation) — burstiness invariance of the feedback bounds.
//
// Real scheduler channels are bursty: sender runs cluster, so deletions
// cluster. The paper's formulas only see long-run rates. This bench drives
// the counter protocol over Markov-modulated channels of increasing
// burstiness at a *fixed* long-run average (P_d = 0.2, P_i = 0.1) and shows
// the measured rate pinned to the iid prediction — the renewal-average
// property that lets the paper's recipe be applied to real systems where
// the non-synchronous events are anything but independent.

#include <cstdio>

#include "ccap/core/bursty_channel.hpp"
#include "ccap/core/capacity_bounds.hpp"
#include "ccap/core/feedback_protocols.hpp"

int main() {
    using namespace ccap;

    constexpr std::size_t kMessage = 50000;
    const core::DiChannelParams target_avg{0.2, 0.1, 0.0, 1};
    std::printf("X7: burstiness sweep at fixed average (p_d=%.2f, p_i=%.2f)\n\n",
                target_avg.p_d, target_avg.p_i);
    std::printf("%-26s %10s %12s %12s %12s\n", "configuration", "bad frac", "burst len",
                "meas rate", "iid predict");

    // iid baseline.
    {
        core::DeletionInsertionChannel ch(target_avg, 0xF7);
        util::Rng rng(0xF7F0);
        std::vector<std::uint32_t> msg(kMessage);
        for (auto& s : msg) s = static_cast<std::uint32_t>(rng.uniform_below(2));
        const auto run = core::run_counter_protocol(ch, msg);
        std::printf("%-26s %10s %12s %12.4f %12.4f\n", "iid (Definition 1)", "-", "-",
                    run.measured_info_rate(1), core::counter_protocol_exact_rate(target_avg));
    }

    // Bursty variants: bad state has 4x the average rates, good state is
    // scaled to keep the stationary mixture at the target average; the
    // switch probabilities set the mean burst length 1/p_bad_to_good.
    for (const double p_b2g : {0.5, 0.2, 0.05, 0.02}) {
        const double p_g2b = p_b2g / 3.0;  // stationary bad fraction 1/4
        const double pb = p_g2b / (p_g2b + p_b2g);
        core::BurstyChannelParams bp;
        bp.bad = {4.0 * target_avg.p_d * 0.5, 4.0 * target_avg.p_i * 0.5, 0.0, 1};
        // Solve good-state rates so the mixture hits the target exactly.
        bp.good.p_d = (target_avg.p_d - pb * bp.bad.p_d) / (1.0 - pb);
        bp.good.p_i = (target_avg.p_i - pb * bp.bad.p_i) / (1.0 - pb);
        bp.good.bits_per_symbol = 1;
        bp.p_good_to_bad = p_g2b;
        bp.p_bad_to_good = p_b2g;

        core::MarkovModulatedChannel ch(bp, 0xF7);
        util::Rng rng(0xF7F0);
        std::vector<std::uint32_t> msg(kMessage);
        for (auto& s : msg) s = static_cast<std::uint32_t>(rng.uniform_below(2));
        const auto run = core::run_counter_protocol(ch, msg);
        char label[48];
        std::snprintf(label, sizeof label, "bursty 1/p=%g", 1.0 / p_b2g);
        std::printf("%-26s %10.3f %12.1f %12.4f %12.4f\n", label,
                    ch.measured_bad_fraction(), 1.0 / p_b2g, run.measured_info_rate(1),
                    core::counter_protocol_exact_rate(bp.average()));
    }
    std::printf("\nShape check: the measured feedback-protocol rate stays on the iid\n"
                "prediction across two orders of magnitude of burst length — the\n"
                "paper's capacity formulas need only the long-run event rates, which is\n"
                "what makes them usable on real (correlated) scheduler channels.\n");
    return 0;
}
