// E3 — Theorem 5 / eqs (2)-(5): the Appendix-A counter protocol on the full
// deletion-insertion channel with perfect feedback.
//
// For each (P_d = P_i, N) the table reports:
//   * the paper's Theorem-5 lower bound (with the reconstructed alpha);
//   * our exact analysis of the same protocol (DESIGN.md section 1);
//   * the *measured* information rate of the executable protocol;
//   * the Theorem-1/4 upper bound;
//   * the measured insertion-garbage fraction vs the P_i/(1-P_d) analysis.
//
// Reproduction finding (recorded in EXPERIMENTS.md): the measured rate
// tracks the exact analysis; the paper's expression is optimistic for
// P_i > 0, converging to the others as P_i -> 0.

#include <cstdio>

#include "ccap/core/capacity_bounds.hpp"
#include "ccap/core/feedback_protocols.hpp"
#include "ccap/core/protocol_analysis.hpp"

int main() {
    using namespace ccap;

    constexpr std::size_t kMessage = 30000;
    std::printf("E3: Theorem 5 — counter protocol over deletion-insertion channel "
                "(P_i = P_d, %zu symbols)\n",
                kMessage);
    std::printf("%-3s %-6s %10s %10s %10s %10s %12s %12s\n", "N", "P_d", "Thm5", "exact",
                "measured", "Thm1/4", "garbage", "P_i/(1-P_d)");

    for (const unsigned n : {1U, 2U, 4U, 8U}) {
        for (const double rate : {0.01, 0.05, 0.1, 0.2, 0.3}) {
            const core::DiChannelParams p{rate, rate, 0.0, n};
            core::DeletionInsertionChannel ch(p, 0xE3);
            util::Rng rng(0xE3F0 + n);
            std::vector<std::uint32_t> msg(kMessage);
            for (auto& s : msg)
                s = static_cast<std::uint32_t>(rng.uniform_below(p.alphabet()));
            const auto run = core::run_counter_protocol(ch, msg);
            const double garbage =
                static_cast<double>(run.garbage_positions) / static_cast<double>(kMessage);
            std::printf("%-3u %-6.2f %10.4f %10.4f %10.4f %10.4f %12.4f %12.4f\n", n, rate,
                        core::theorem5_lower_bound(p), core::counter_protocol_exact_rate(p),
                        run.measured_info_rate(n), core::theorem1_upper_bound(p), garbage,
                        core::counter_protocol_garbage_fraction(p));
        }
        std::printf("\n");
    }
    std::printf("Shape check: measured == exact (within MC noise) <= Thm1/4; Thm5 sits\n"
                "between exact and Thm1/4, collapsing onto both as P_i -> 0.\n");
    return 0;
}
