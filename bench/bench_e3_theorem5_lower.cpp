// E3 — Theorem 5 / eqs (2)-(5): the Appendix-A counter protocol on the full
// deletion-insertion channel with perfect feedback.
//
// For each (P_d = P_i, N) the table reports:
//   * the paper's Theorem-5 lower bound (with the reconstructed alpha);
//   * our exact analysis of the same protocol (DESIGN.md section 1);
//   * the *measured* information rate of the executable protocol;
//   * the Theorem-1/4 upper bound;
//   * the measured insertion-garbage fraction vs the P_i/(1-P_d) analysis.
//
// Reproduction finding (recorded in EXPERIMENTS.md): the measured rate
// tracks the exact analysis; the paper's expression is optimistic for
// P_i > 0, converging to the others as P_i -> 0.
//
// The (N, P_d) grid rows are independent 30000-symbol protocol executions;
// they run through the shared thread pool and the serial-vs-parallel wall
// time is emitted as BENCH_e3_grid.json.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "ccap/core/capacity_bounds.hpp"
#include "ccap/core/feedback_protocols.hpp"
#include "ccap/core/protocol_analysis.hpp"
#include "ccap/util/thread_pool.hpp"

namespace {

using namespace ccap;

constexpr std::size_t kMessage = 30000;

struct GridPoint {
    unsigned n;
    double rate;
};

std::string run_point(const GridPoint& g) {
    const core::DiChannelParams p{g.rate, g.rate, 0.0, g.n};
    core::DeletionInsertionChannel ch(p, 0xE3);
    util::Rng rng(0xE3F0 + g.n);
    std::vector<std::uint32_t> msg(kMessage);
    for (auto& s : msg) s = static_cast<std::uint32_t>(rng.uniform_below(p.alphabet()));
    const auto run = core::run_counter_protocol(ch, msg);
    const double garbage =
        static_cast<double>(run.garbage_positions) / static_cast<double>(kMessage);
    char line[160];
    std::snprintf(line, sizeof line, "%-3u %-6.2f %10.4f %10.4f %10.4f %10.4f %12.4f %12.4f\n",
                  g.n, g.rate, core::theorem5_lower_bound(p),
                  core::counter_protocol_exact_rate(p), run.measured_info_rate(g.n),
                  core::theorem1_upper_bound(p), garbage,
                  core::counter_protocol_garbage_fraction(p));
    return line;
}

}  // namespace

int main() {
    using namespace ccap;

    std::printf("E3: Theorem 5 — counter protocol over deletion-insertion channel "
                "(P_i = P_d, %zu symbols)\n",
                kMessage);
    std::printf("%-3s %-6s %10s %10s %10s %10s %12s %12s\n", "N", "P_d", "Thm5", "exact",
                "measured", "Thm1/4", "garbage", "P_i/(1-P_d)");

    std::vector<GridPoint> grid;
    for (const unsigned n : {1U, 2U, 4U, 8U})
        for (const double rate : {0.01, 0.05, 0.1, 0.2, 0.3}) grid.push_back({n, rate});

    auto& pool = util::ThreadPool::shared();
    std::vector<std::string> rows(grid.size());

    bench::WallTimer serial_timer;
    for (std::size_t i = 0; i < grid.size(); ++i) rows[i] = run_point(grid[i]);
    const double serial_sec = serial_timer.seconds();
    const std::vector<std::string> serial_rows = rows;

    bench::WallTimer parallel_timer;
    util::parallel_for(pool, grid.size(), [&](std::size_t i) { rows[i] = run_point(grid[i]); });
    const double parallel_sec = parallel_timer.seconds();

    for (std::size_t i = 0; i < rows.size(); ++i) {
        std::fputs(rows[i].c_str(), stdout);
        if (i % 5 == 4) std::printf("\n");  // group by symbol width N
    }
    std::printf("Shape check: measured == exact (within MC noise) <= Thm1/4; Thm5 sits\n"
                "between exact and Thm1/4, collapsing onto both as P_i -> 0.\n");
    std::printf("Grid determinism: parallel rows %s serial rows.\n",
                rows == serial_rows ? "identical to" : "DIFFER FROM");

    bench::BenchJson json("e3_grid");
    json.field("points", static_cast<std::uint64_t>(grid.size()))
        .field("message_symbols", static_cast<std::uint64_t>(kMessage))
        .field("serial_sec", serial_sec)
        .field("parallel_sec", parallel_sec)
        .field("speedup", parallel_sec > 0.0 ? serial_sec / parallel_sec : 0.0)
        .field("pool_threads", static_cast<std::uint64_t>(pool.size()))
        .field("deterministic", rows == serial_rows ? "true" : "false");
    json.write();
    return rows == serial_rows ? 0 : 1;
}
