// E8 — Section 4.2.2 / Figs 3-4: synchronizing via a common event source E
// never beats synchronizing via feedback.
//
// Regenerates the comparison over the sender-share sweep: the Fig-1
// two-variable (feedback) handshake vs the Fig-3 slotted common-event
// mechanism at its *best* slot length, in both closed form and simulation,
// plus the common-event reliability deficit (it cannot prevent losses).

#include <cstdio>

#include "ccap/core/feedback_protocols.hpp"
#include "ccap/core/protocol_analysis.hpp"

int main() {
    using namespace ccap;

    std::printf("E8: feedback vs common-event synchronization  [symbols per quantum]\n");
    std::printf("%-8s %10s %10s %8s %10s %10s %9s %9s\n", "share q", "fb theory", "fb sim",
                "best L", "ce theory", "ce sim", "margin", "ce reliab");

    for (const double q : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
        const double fb_theory = core::handshake_expected_throughput(q);
        const auto ce_best = core::common_event_best_throughput(q);

        core::SyncSimConfig cfg;
        cfg.message_len = 20000;
        cfg.sender_share = q;
        cfg.seed = 0xE8;
        const auto fb_sim = core::simulate_two_variable_handshake(cfg);
        const auto ce_sim = core::simulate_common_event_sync(cfg, ce_best.slot_len);
        const double ce_sim_rate =
            static_cast<double>(ce_sim.delivered) / static_cast<double>(ce_sim.quanta);

        std::printf("%-8.2f %10.4f %10.4f %8u %10.4f %10.4f %9.4f %9s\n", q, fb_theory,
                    fb_sim.symbols_per_quantum(), ce_best.slot_len, ce_best.throughput,
                    ce_sim_rate, core::feedback_advantage(q),
                    ce_sim.reliable ? "exact" : "lossy");
    }
    std::printf("\nShape check: margin (feedback - best common-event) is positive at every\n"
                "share, and the common-event stream is lossy while feedback is exact —\n"
                "the Section-4.2.2 reduction, measured.\n");
    return 0;
}
